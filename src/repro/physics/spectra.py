"""Ground-level particle flux spectra (paper Fig. 2).

Two spectra drive the FIT-rate integration (paper eqs. 7-8):

* :class:`SeaLevelProtonSpectrum` -- the differential sea-level proton
  intensity of Fig. 2(a) (after Hagmann et al. [23]), implemented as a
  log-log interpolation over anchor points read off the figure and
  converted from per-steradian intensity to through-surface flux by the
  cosine-weighted hemisphere factor pi.
* :class:`AlphaEmissionSpectrum` -- the package alpha emission spectrum
  of Fig. 2(b) (after Sai-Halasz et al. [24]): U/Th decay-chain lines,
  Gaussian-broadened, over a degraded low-energy continuum (alphas born
  below the package surface emerge slowed down), normalized to the
  paper's assumed total emission rate of 0.001 alpha / (cm^2 h) [25].

Both expose the same interface: differential flux, integral flux over a
band, energy discretization for eq. 8, and flux-weighted sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError, PhysicsError
from ..units import per_hour_to_per_second

#: Paper assumption: total alpha emission rate [1/(cm^2 h)].
ALPHA_EMISSION_RATE_PER_CM2_H = 0.001


@dataclass(frozen=True)
class EnergyBins:
    """Discretized spectrum for the eq. 8 sum.

    Attributes
    ----------
    edges_mev:
        Bin edges, shape ``(n+1,)``.
    representative_mev:
        Representative (geometric-mean) energy per bin, shape ``(n,)``.
    integral_flux_per_cm2_s:
        Integral flux in each bin [1/(cm^2 s)], shape ``(n,)``.
    """

    edges_mev: np.ndarray
    representative_mev: np.ndarray
    integral_flux_per_cm2_s: np.ndarray

    def __len__(self) -> int:
        return len(self.representative_mev)

    @property
    def total_flux_per_cm2_s(self) -> float:
        """Total integral flux across all bins."""
        return float(np.sum(self.integral_flux_per_cm2_s))


class _SpectrumBase:
    """Shared integration / binning / sampling machinery."""

    #: Domain of validity [MeV]; subclasses set these.
    e_min_mev: float
    e_max_mev: float

    def differential_flux(self, energy_mev):
        """Differential through-surface flux [1/(cm^2 s MeV)]."""
        raise NotImplementedError

    def integral_flux(self, e_lo_mev: float, e_hi_mev: float) -> float:
        """Integral flux [1/(cm^2 s)] over ``[e_lo, e_hi]`` (log-trapezoid)."""
        if not (0 < e_lo_mev < e_hi_mev):
            raise ConfigError("need 0 < e_lo < e_hi for integral flux")
        e_lo = max(e_lo_mev, self.e_min_mev)
        e_hi = min(e_hi_mev, self.e_max_mev)
        if e_hi <= e_lo:
            return 0.0
        grid = np.exp(np.linspace(math.log(e_lo), math.log(e_hi), 257))
        flux = self.differential_flux(grid)
        return float(np.trapezoid(flux, grid))

    def make_bins(
        self,
        n_bins: int,
        e_min_mev: Optional[float] = None,
        e_max_mev: Optional[float] = None,
    ) -> EnergyBins:
        """Log-spaced energy discretization with per-bin integral fluxes."""
        if n_bins < 1:
            raise ConfigError("need at least one energy bin")
        e_min = self.e_min_mev if e_min_mev is None else float(e_min_mev)
        e_max = self.e_max_mev if e_max_mev is None else float(e_max_mev)
        if not (0 < e_min < e_max):
            raise ConfigError("need 0 < e_min < e_max for binning")
        edges = np.exp(np.linspace(math.log(e_min), math.log(e_max), n_bins + 1))
        centers = np.sqrt(edges[:-1] * edges[1:])
        integrals = np.array(
            [
                self.integral_flux(edges[i], edges[i + 1])
                for i in range(n_bins)
            ]
        )
        return EnergyBins(edges, centers, integrals)

    def sample_energies(
        self,
        n: int,
        rng: np.random.Generator,
        n_bins: int = 256,
        e_min_mev: Optional[float] = None,
        e_max_mev: Optional[float] = None,
    ) -> np.ndarray:
        """Sample energies [MeV] with probability proportional to flux.

        ``e_min_mev`` / ``e_max_mev`` restrict the sampled band (for
        folding a sub-range, e.g. the FIT integration window).
        """
        bins = self.make_bins(n_bins, e_min_mev, e_max_mev)
        weights = bins.integral_flux_per_cm2_s
        total = weights.sum()
        if total <= 0:
            raise PhysicsError("spectrum has zero total flux; cannot sample")
        probabilities = weights / total
        chosen = rng.choice(len(bins), size=n, p=probabilities)
        lo = bins.edges_mev[chosen]
        hi = bins.edges_mev[chosen + 1]
        # log-uniform within a bin (bins are narrow in log space)
        u = rng.uniform(0.0, 1.0, size=n)
        return lo * (hi / lo) ** u


class SeaLevelProtonSpectrum(_SpectrumBase):
    """Sea-level differential proton flux (paper Fig. 2(a)).

    Anchor points ``(E [MeV], intensity [1/(m^2 s sr MeV)])`` are read
    off the published figure; between anchors the spectrum is a power
    law (linear in log-log).  The through-surface differential flux is
    ``pi * intensity * 1e-4`` [1/(cm^2 s MeV)] (cosine-weighted downward
    hemisphere).
    """

    # The published figure spans 1e0-1e7 MeV; the 0.1-1 MeV anchors
    # extrapolate its low-energy power-law slope, covering the
    # low-energy direct-ionization protons the paper's Fig. 8 evaluates
    # (POF is scanned from 0.1 MeV).
    _ANCHORS_E_MEV = np.array(
        [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1.0e3, 1.0e4, 1.0e5, 1.0e6, 1.0e7]
    )
    _ANCHORS_INTENSITY = np.array(
        [2.5e-2, 1.6e-2, 1.0e-2, 5.0e-3, 2.0e-3, 8.0e-4, 3.0e-4, 1.0e-4, 2.0e-5, 3.0e-7, 1.0e-9, 3.0e-12, 1.0e-14]
    )

    e_min_mev = 0.1
    e_max_mev = 1.0e7

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ConfigError("spectrum scale must be positive")
        self.scale = float(scale)
        self._log_e = np.log(self._ANCHORS_E_MEV)
        self._log_i = np.log(self._ANCHORS_INTENSITY)

    def intensity(self, energy_mev):
        """Differential intensity [1/(m^2 s sr MeV)] (vectorized)."""
        energy = np.asarray(energy_mev, dtype=np.float64)
        if np.any(energy <= 0):
            raise PhysicsError("energy must be positive")
        log_e = np.log(energy)
        log_i = np.interp(log_e, self._log_e, self._log_i)
        result = self.scale * np.exp(log_i)
        in_range = (energy >= self.e_min_mev) & (energy <= self.e_max_mev)
        return np.where(in_range, result, 0.0)

    def differential_flux(self, energy_mev):
        """Through-surface differential flux [1/(cm^2 s MeV)]."""
        # pi: integral of cos(theta) over the downward hemisphere;
        # 1e-4: m^-2 -> cm^-2.
        return math.pi * 1.0e-4 * self.intensity(energy_mev)


#: Prominent alpha lines of the 238U / 235U / 232Th decay chains [MeV]
#: with rough relative weights (each chain member contributes one line;
#: weights lump isotopic abundance and branching at figure fidelity).
_ALPHA_LINES_MEV = np.array(
    [4.20, 4.40, 4.78, 5.30, 5.49, 5.69, 6.00, 6.29, 6.78, 7.69, 8.78]
)
_ALPHA_LINE_WEIGHTS = np.array(
    [1.0, 0.6, 1.0, 0.8, 1.0, 0.7, 0.9, 0.6, 0.5, 0.7, 0.3]
)


class AlphaEmissionSpectrum(_SpectrumBase):
    """Package alpha emission spectrum (paper Fig. 2(b)).

    A mixture of Gaussian-broadened U/Th decay-chain lines plus a
    degraded continuum (fraction ``continuum_fraction`` spread over
    ``[0.5 MeV, max line]``, representing alphas slowed by overburden
    before reaching the die), normalized so the total emission rate is
    ``rate_per_cm2_h`` (paper: 0.001 alpha / cm^2 h).
    """

    e_min_mev = 0.1
    e_max_mev = 10.0

    def __init__(
        self,
        rate_per_cm2_h: float = ALPHA_EMISSION_RATE_PER_CM2_H,
        line_sigma_mev: float = 0.18,
        continuum_fraction: float = 0.35,
    ):
        if rate_per_cm2_h <= 0:
            raise ConfigError("alpha emission rate must be positive")
        if line_sigma_mev <= 0:
            raise ConfigError("line broadening sigma must be positive")
        if not (0.0 <= continuum_fraction < 1.0):
            raise ConfigError("continuum fraction must lie in [0, 1)")
        self.rate_per_cm2_s = per_hour_to_per_second(rate_per_cm2_h)
        self.line_sigma_mev = float(line_sigma_mev)
        self.continuum_fraction = float(continuum_fraction)
        self._normalization = self._compute_normalization()

    def _unnormalized_density(self, energy_mev):
        energy = np.asarray(energy_mev, dtype=np.float64)
        density = np.zeros_like(energy)
        sig = self.line_sigma_mev
        for line_e, weight in zip(_ALPHA_LINES_MEV, _ALPHA_LINE_WEIGHTS):
            density += (
                weight
                / (sig * math.sqrt(2.0 * math.pi))
                * np.exp(-0.5 * ((energy - line_e) / sig) ** 2)
            )
        line_mass = float(np.sum(_ALPHA_LINE_WEIGHTS))
        density *= (1.0 - self.continuum_fraction) / line_mass

        # Degraded continuum: flat in energy from 0.5 MeV up to the top
        # line -- the classic slowing-down spectrum of a thick source.
        cont_lo, cont_hi = 0.5, float(_ALPHA_LINES_MEV[-1])
        in_cont = (energy >= cont_lo) & (energy <= cont_hi)
        density += np.where(
            in_cont, self.continuum_fraction / (cont_hi - cont_lo), 0.0
        )
        in_range = (energy >= self.e_min_mev) & (energy <= self.e_max_mev)
        return np.where(in_range, density, 0.0)

    def _compute_normalization(self) -> float:
        grid = np.linspace(self.e_min_mev, self.e_max_mev, 4001)
        mass = float(np.trapezoid(self._unnormalized_density(grid), grid))
        if mass <= 0:
            raise PhysicsError("alpha spectrum has zero probability mass")
        return 1.0 / mass

    def differential_flux(self, energy_mev):
        """Differential emission flux [1/(cm^2 s MeV)] (vectorized)."""
        return (
            self.rate_per_cm2_s
            * self._normalization
            * self._unnormalized_density(energy_mev)
        )

    def integral_flux(self, e_lo_mev: float, e_hi_mev: float) -> float:
        """Integral flux [1/(cm^2 s)]; linear grid (spectrum is not smooth in log)."""
        if not (0 < e_lo_mev < e_hi_mev):
            raise ConfigError("need 0 < e_lo < e_hi for integral flux")
        e_lo = max(e_lo_mev, self.e_min_mev)
        e_hi = min(e_hi_mev, self.e_max_mev)
        if e_hi <= e_lo:
            return 0.0
        grid = np.linspace(e_lo, e_hi, 513)
        return float(np.trapezoid(self.differential_flux(grid), grid))


def spectrum_for(particle_name: str, **kwargs):
    """Factory: the ground-level spectrum for a particle name."""
    if particle_name == "proton":
        return SeaLevelProtonSpectrum(**kwargs)
    if particle_name == "alpha":
        return AlphaEmissionSpectrum(**kwargs)
    if particle_name == "neutron":
        from .neutron import SeaLevelNeutronSpectrum

        return SeaLevelNeutronSpectrum(**kwargs)
    raise ConfigError(f"no ground-level spectrum for particle {particle_name!r}")
