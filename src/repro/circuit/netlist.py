"""Netlist container and compilation to an MNA index space.

A :class:`Circuit` is a bag of named elements over named nodes.
``compile()`` freezes it into a :class:`CompiledCircuit` with dense
index maps; the DC and transient solvers operate on the compiled form.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CircuitError
from .elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    FinFET,
    Resistor,
    VoltageSource,
)


class Circuit:
    """A named collection of circuit elements.

    Nodes are created implicitly the first time an element references
    them; node ``"0"`` is ground.  Element names must be unique.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: List[object] = []
        self._element_names: set = set()
        self._nodes: Dict[str, None] = {GROUND: None}

    # -- construction -----------------------------------------------------

    def _register(self, element, *nodes):
        if element.name in self._element_names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        self._element_names.add(element.name)
        for node in nodes:
            if not isinstance(node, str) or not node:
                raise CircuitError(f"invalid node name {node!r}")
            self._nodes.setdefault(node, None)
        self._elements.append(element)
        return element

    def add_resistor(self, name, node_a, node_b, resistance_ohm) -> Resistor:
        """Add a resistor [ohm]."""
        return self._register(
            Resistor(name, node_a, node_b, resistance_ohm), node_a, node_b
        )

    def add_capacitor(self, name, node_a, node_b, capacitance_f) -> Capacitor:
        """Add a capacitor [F]."""
        return self._register(
            Capacitor(name, node_a, node_b, capacitance_f), node_a, node_b
        )

    def add_vsource(self, name, node_pos, node_neg, value) -> VoltageSource:
        """Add a voltage source (constant or :class:`Waveform`)."""
        return self._register(
            VoltageSource(name, node_pos, node_neg, value), node_pos, node_neg
        )

    def add_isource(self, name, node_from, node_to, value) -> CurrentSource:
        """Add a current source; ``value(t)`` flows from -> to."""
        return self._register(
            CurrentSource(name, node_from, node_to, value), node_from, node_to
        )

    def add_finfet(
        self, name, drain, gate, source, model, nfin=1, vth_shift_v=0.0
    ) -> FinFET:
        """Add a FinFET instance (see :class:`repro.circuit.elements.FinFET`)."""
        return self._register(
            FinFET(name, drain, gate, source, model, nfin, vth_shift_v),
            drain,
            gate,
            source,
        )

    # -- introspection ------------------------------------------------------

    @property
    def elements(self) -> List[object]:
        """All elements in insertion order."""
        return list(self._elements)

    @property
    def node_names(self) -> List[str]:
        """All node names including ground."""
        return list(self._nodes)

    def element(self, name: str):
        """Fetch an element by name."""
        for el in self._elements:
            if el.name == name:
                return el
        raise CircuitError(f"no element named {name!r}")

    def compile(self) -> "CompiledCircuit":
        """Freeze into an MNA-indexed form."""
        return CompiledCircuit(self)


class CompiledCircuit:
    """A circuit with resolved MNA indices.

    Index space: nodes other than ground get indices ``0..n_nodes-1``;
    ground maps to ``-1`` (handled by the system assembler).  Voltage
    sources get branch rows ``n_nodes..n_nodes+n_vsrc-1``.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        non_ground = [n for n in circuit.node_names if n != GROUND]
        self.node_index: Dict[str, int] = {GROUND: -1}
        for i, node in enumerate(non_ground):
            self.node_index[node] = i
        self.n_nodes = len(non_ground)

        self.resistors = [e for e in circuit.elements if isinstance(e, Resistor)]
        self.capacitors = [e for e in circuit.elements if isinstance(e, Capacitor)]
        self.vsources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
        self.isources = [e for e in circuit.elements if isinstance(e, CurrentSource)]
        self.finfets = [e for e in circuit.elements if isinstance(e, FinFET)]
        self.n_vsources = len(self.vsources)
        self.size = self.n_nodes + self.n_vsources

        if self.n_nodes == 0:
            raise CircuitError("circuit has no non-ground nodes")

    def voltage_index(self, node_name: str) -> int:
        """MNA index of a node (-1 for ground)."""
        try:
            return self.node_index[node_name]
        except KeyError:
            raise CircuitError(f"unknown node {node_name!r}") from None
