"""Dense Modified-Nodal-Analysis system assembly.

:class:`MnaSystem` is a scratch (A, b) pair with ground-aware stamping
helpers.  Circuits here are tiny (a 6T cell is ~10 unknowns), so dense
numpy assembly + ``numpy.linalg.solve`` is both simplest and fastest.
"""

from __future__ import annotations

import numpy as np

from ..errors import CircuitError


class MnaSystem:
    """Dense ``A x = b`` with ground handling (index -1 is discarded)."""

    def __init__(self, n_nodes: int, n_branches: int):
        self.n_nodes = n_nodes
        self.n_branches = n_branches
        self.size = n_nodes + n_branches
        self.matrix = np.zeros((self.size, self.size), dtype=np.float64)
        self.rhs = np.zeros(self.size, dtype=np.float64)

    # -- stamping helpers ---------------------------------------------------

    def add_conductance(self, a: int, b: int, g: float):
        """Stamp a two-terminal conductance between node indices a, b."""
        if a >= 0:
            self.matrix[a, a] += g
        if b >= 0:
            self.matrix[b, b] += g
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= g
            self.matrix[b, a] -= g

    def add_jacobian(self, row: int, col: int, value: float):
        """Stamp a raw Jacobian entry (nonlinear device linearization)."""
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_current(self, node: int, value: float):
        """Inject ``value`` amperes *into* a node (RHS contribution)."""
        if node >= 0:
            self.rhs[node] += value

    def add_branch(self, branch_row: int, pos: int, neg: int):
        """Wire a voltage-source branch: KCL couplings + KVL row."""
        row = self.n_nodes + branch_row
        if row >= self.size:
            raise CircuitError("branch row out of range")
        if pos >= 0:
            self.matrix[pos, row] += 1.0
            self.matrix[row, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, row] -= 1.0
            self.matrix[row, neg] -= 1.0

    def set_branch_value(self, branch_row: int, volts: float):
        """Set the KVL right-hand side of a voltage-source branch."""
        self.rhs[self.n_nodes + branch_row] = volts

    def add_gmin(self, gmin: float, targets=None):
        """Add a small conductance on every node (homotopy aid).

        With ``targets`` (length ``n_nodes``), each node is pulled
        toward its target voltage instead of toward ground -- this
        preserves nodeset-selected equilibria of multistable circuits
        through the gmin continuation.
        """
        for i in range(self.n_nodes):
            self.matrix[i, i] += gmin
            if targets is not None:
                self.rhs[i] += gmin * float(targets[i])

    # -- solution helpers ---------------------------------------------------

    @staticmethod
    def voltage_at(solution: np.ndarray, node: int) -> float:
        """Voltage of a node index in a solution vector (ground = 0)."""
        return 0.0 if node < 0 else float(solution[node])

    @staticmethod
    def voltage_between(solution: np.ndarray, a: int, b: int) -> float:
        """Voltage difference ``V(a) - V(b)``."""
        va = 0.0 if a < 0 else float(solution[a])
        vb = 0.0 if b < 0 else float(solution[b])
        return va - vb

    def solve(self) -> np.ndarray:
        """Solve the assembled system (raises on singular matrices)."""
        try:
            return np.linalg.solve(self.matrix, self.rhs)
        except np.linalg.LinAlgError as exc:
            raise CircuitError(f"singular MNA system: {exc}") from exc
