"""SPICE-netlist interchange for the circuit engine.

Writes and parses a practical SPICE dialect so cells can be exchanged
with standalone simulators (and so strike netlists are inspectable by
eye).  Supported cards:

* ``R<name> n1 n2 <ohms>``
* ``C<name> n1 n2 <farads>``
* ``V<name> n+ n- <volts>``  (DC only)
* ``I<name> n+ n- <amps | PULSE(i1 i2 td tr tf pw) | EXP(i1 i2 td1
  tau1 td2 tau2) | PWL(t1 v1 t2 v2 ...)>``
* ``M<name> d g s b <model> [nfin=<int>] [dvth=<volts>]`` -- FinFET
  instance (bulk node ignored: SOI)
* ``.model <name> finfet polarity=<1|-1> vth0=... beta=... alpha=...
  n=... vdsatk=... vdsatmin=... lambda=... cgg=... cdb=...``
* ``*`` comments, ``.end``, SPICE engineering suffixes (f, p, n, u, m,
  k, meg, g, t).

Current-source semantics note: SPICE's positive current flows from the
+ node through the source to the - node; our
:class:`~repro.circuit.elements.CurrentSource` uses the same
convention with ``node_from`` = + node.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..devices.finfet import FinFETModel
from ..errors import CircuitError
from .elements import Capacitor, CurrentSource, FinFET, Resistor, VoltageSource
from .netlist import Circuit
from .waveform import Dc, DoubleExponential, Pwl, RectPulse, Waveform

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)(meg|[tgkmunpf])?$",
    re.IGNORECASE,
)


def parse_spice_number(token: str) -> float:
    """Parse a SPICE number with engineering suffix (``1.5p`` etc.)."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise CircuitError(f"malformed SPICE number {token!r}")
    value = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return value * _SUFFIXES.get(suffix, 1.0)


def format_spice_number(value: float) -> str:
    """Format a float compactly (plain scientific; always parseable)."""
    return f"{value:.6g}"


# -- writing ----------------------------------------------------------------


def circuit_to_spice(circuit: Circuit, title: Optional[str] = None) -> str:
    """Render a :class:`Circuit` as SPICE netlist text."""
    lines = [f"* {title or circuit.name}"]
    models: Dict[str, FinFETModel] = {}

    for element in circuit.elements:
        if isinstance(element, Resistor):
            lines.append(
                f"R{element.name} {element.node_a} {element.node_b} "
                f"{format_spice_number(element.resistance_ohm)}"
            )
        elif isinstance(element, Capacitor):
            lines.append(
                f"C{element.name} {element.node_a} {element.node_b} "
                f"{format_spice_number(element.capacitance_f)}"
            )
        elif isinstance(element, VoltageSource):
            lines.append(
                f"V{element.name} {element.node_pos} {element.node_neg} "
                f"{_waveform_to_spice(element.waveform)}"
            )
        elif isinstance(element, CurrentSource):
            lines.append(
                f"I{element.name} {element.node_from} {element.node_to} "
                f"{_waveform_to_spice(element.waveform)}"
            )
        elif isinstance(element, FinFET):
            models[element.model.name] = element.model
            card = (
                f"M{element.name} {element.drain} {element.gate} "
                f"{element.source} 0 {element.model.name}"
            )
            if element.nfin != 1:
                card += f" nfin={element.nfin}"
            if element.vth_shift_v != 0.0:
                card += f" dvth={format_spice_number(element.vth_shift_v)}"
            lines.append(card)
        else:
            raise CircuitError(
                f"cannot serialize element type {type(element).__name__}"
            )

    for model in models.values():
        lines.append(
            f".model {model.name} finfet polarity={model.polarity} "
            f"vth0={format_spice_number(model.vth0_v)} "
            f"beta={format_spice_number(model.beta_a_per_valpha)} "
            f"alpha={format_spice_number(model.alpha)} "
            f"n={format_spice_number(model.n_factor)} "
            f"vdsatk={format_spice_number(model.vdsat_coeff)} "
            f"vdsatmin={format_spice_number(model.vdsat_min_v)} "
            f"lambda={format_spice_number(model.lambda_v)} "
            f"cgg={format_spice_number(model.cgg_f)} "
            f"cdb={format_spice_number(model.cdb_f)}"
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _waveform_to_spice(waveform: Waveform) -> str:
    if isinstance(waveform, Dc):
        return format_spice_number(waveform.level)
    if isinstance(waveform, RectPulse):
        # PULSE(i1 i2 td tr tf pw): ideal edges
        return (
            f"PULSE(0 {format_spice_number(waveform.amplitude)} "
            f"{format_spice_number(waveform.delay_s)} 0 0 "
            f"{format_spice_number(waveform.width_s)})"
        )
    if isinstance(waveform, DoubleExponential):
        return (
            f"EXP(0 {format_spice_number(waveform.i0)} "
            f"{format_spice_number(waveform.delay_s)} "
            f"{format_spice_number(waveform.tau_rise_s)} "
            f"{format_spice_number(waveform.delay_s)} "
            f"{format_spice_number(waveform.tau_fall_s)})"
        )
    if isinstance(waveform, Pwl):
        pairs = " ".join(
            f"{format_spice_number(t)} {format_spice_number(v)}"
            for t, v in zip(waveform.times_s, waveform.values)
        )
        return f"PWL({pairs})"
    raise CircuitError(
        f"cannot serialize waveform type {type(waveform).__name__}"
    )


def write_spice(circuit: Circuit, path: Union[str, Path], title: Optional[str] = None):
    """Write a circuit to a ``.sp`` file."""
    Path(path).write_text(circuit_to_spice(circuit, title))


# -- parsing ----------------------------------------------------------------


def spice_to_circuit(text: str, name: str = "parsed") -> Circuit:
    """Parse netlist text (the dialect written by :func:`circuit_to_spice`)."""
    element_lines: List[str] = []
    models: Dict[str, FinFETModel] = {}

    for raw in text.splitlines():
        line = raw.split("$", 1)[0].strip()
        if not line or line.startswith("*"):
            continue
        lowered = line.lower()
        if lowered == ".end":
            break
        if lowered.startswith(".model"):
            model = _parse_model_card(line)
            models[model.name] = model
            continue
        if lowered.startswith("."):
            continue  # other dot-cards ignored (.tran etc.)
        element_lines.append(line)

    circuit = Circuit(name)
    for line in element_lines:
        _parse_element_card(circuit, line, models)
    return circuit


def read_spice(path: Union[str, Path]) -> Circuit:
    """Read a ``.sp`` file into a :class:`Circuit`."""
    return spice_to_circuit(Path(path).read_text(), name=Path(path).stem)


def _parse_model_card(line: str) -> FinFETModel:
    tokens = line.split()
    if len(tokens) < 3 or tokens[2].lower() != "finfet":
        raise CircuitError(f"unsupported .model card: {line!r}")
    params = _parse_params(tokens[3:])
    try:
        return FinFETModel(
            name=tokens[1],
            polarity=int(params["polarity"]),
            vth0_v=params["vth0"],
            beta_a_per_valpha=params["beta"],
            alpha=params["alpha"],
            n_factor=params["n"],
            vdsat_coeff=params.get("vdsatk", 0.6),
            vdsat_min_v=params.get("vdsatmin", 0.05),
            lambda_v=params.get("lambda", 0.05),
            cgg_f=params.get("cgg", 4.0e-17),
            cdb_f=params.get("cdb", 1.0e-17),
        )
    except KeyError as exc:
        raise CircuitError(f"missing model parameter {exc} in: {line!r}") from exc


def _parse_params(tokens) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            raise CircuitError(f"malformed parameter {token!r}")
        key, value = token.split("=", 1)
        params[key.lower()] = parse_spice_number(value)
    return params


def _parse_element_card(circuit: Circuit, line: str, models):
    kind = line[0].upper()
    tokens = line.split()
    name = tokens[0][1:]
    if not name:
        raise CircuitError(f"element card without a name: {line!r}")

    if kind == "R":
        circuit.add_resistor(name, tokens[1], tokens[2], parse_spice_number(tokens[3]))
    elif kind == "C":
        circuit.add_capacitor(name, tokens[1], tokens[2], parse_spice_number(tokens[3]))
    elif kind == "V":
        circuit.add_vsource(name, tokens[1], tokens[2], parse_spice_number(tokens[3]))
    elif kind == "I":
        waveform = _parse_source_value(" ".join(tokens[3:]))
        circuit.add_isource(name, tokens[1], tokens[2], waveform)
    elif kind == "M":
        if len(tokens) < 6:
            raise CircuitError(f"malformed FinFET card: {line!r}")
        model_name = tokens[5]
        if model_name not in models:
            raise CircuitError(f"unknown model {model_name!r} in: {line!r}")
        params = _parse_params(tokens[6:]) if len(tokens) > 6 else {}
        circuit.add_finfet(
            name,
            tokens[1],
            tokens[2],
            tokens[3],
            models[model_name],
            nfin=int(params.get("nfin", 1)),
            vth_shift_v=params.get("dvth", 0.0),
        )
    else:
        raise CircuitError(f"unsupported element card: {line!r}")


_FUNC_RE = re.compile(r"^(PULSE|EXP|PWL)\s*\((.*)\)$", re.IGNORECASE)


def _parse_source_value(text: str) -> Waveform:
    text = text.strip()
    match = _FUNC_RE.match(text)
    if not match:
        return Dc(parse_spice_number(text))
    func = match.group(1).upper()
    args = [parse_spice_number(t) for t in match.group(2).replace(",", " ").split()]
    if func == "PULSE":
        # PULSE(i1 i2 td tr tf pw [per]) -- ideal-edge rectangular
        if len(args) < 6:
            raise CircuitError(f"PULSE needs 6 arguments, got {len(args)}")
        _, amplitude, delay, _, _, width = args[:6]
        return RectPulse(amplitude=amplitude, width_s=width, delay_s=delay)
    if func == "EXP":
        # EXP(i1 i2 td1 tau1 td2 tau2)
        if len(args) < 6:
            raise CircuitError(f"EXP needs 6 arguments, got {len(args)}")
        _, i0, delay, tau_rise, _, tau_fall = args[:6]
        return DoubleExponential(
            i0=i0, tau_rise_s=tau_rise, tau_fall_s=tau_fall, delay_s=delay
        )
    # PWL(t1 v1 t2 v2 ...)
    if len(args) < 4 or len(args) % 2:
        raise CircuitError("PWL needs an even number of >= 4 arguments")
    return Pwl(args[0::2], args[1::2])
