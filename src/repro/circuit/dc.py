"""DC operating-point solver (Newton with gmin stepping and damping).

For bistable circuits (an SRAM cell has two stable states plus a
metastable saddle) Newton converges to the equilibrium nearest the
initial guess, so callers select a state by passing ``initial_guess``
node voltages -- exactly how a SPICE ``.nodeset`` is used.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConvergenceError
from .mna import MnaSystem
from .netlist import Circuit, CompiledCircuit

#: gmin homotopy schedule [S]; the final 0.0 solves the true system.
_GMIN_SCHEDULE = (1.0e-3, 1.0e-5, 1.0e-7, 1.0e-9, 1.0e-12, 0.0)

#: Per-iteration Newton voltage-step clamp [V] -- tames the exponential
#: subthreshold region.
_MAX_STEP_V = 0.3


class DcSolution:
    """Solved operating point with named node access."""

    def __init__(self, compiled: CompiledCircuit, solution: np.ndarray):
        self._compiled = compiled
        self._solution = solution

    def voltage(self, node_name: str) -> float:
        """Node voltage [V] (ground is 0 by definition)."""
        index = self._compiled.voltage_index(node_name)
        return MnaSystem.voltage_at(self._solution, index)

    def voltages(self) -> Dict[str, float]:
        """All node voltages by name."""
        return {
            name: self.voltage(name)
            for name in self._compiled.circuit.node_names
        }

    def branch_current(self, vsource_name: str) -> float:
        """Current through a voltage source [A] (positive into + node)."""
        for row, src in enumerate(self._compiled.vsources):
            if src.name == vsource_name:
                return float(self._solution[self._compiled.n_nodes + row])
        from ..errors import CircuitError

        raise CircuitError(f"no voltage source named {vsource_name!r}")

    @property
    def raw(self) -> np.ndarray:
        """The raw MNA solution vector (nodes then branch currents)."""
        return self._solution.copy()


def _assemble(
    compiled: CompiledCircuit,
    v_guess,
    time_s,
    gmin,
    gmin_targets=None,
    source_interval=None,
):
    system = MnaSystem(compiled.n_nodes, compiled.n_vsources)
    index = compiled.node_index
    for resistor in compiled.resistors:
        resistor.stamp_static(system, index)
    for row, vsource in enumerate(compiled.vsources):
        vsource.stamp_source(system, index, row, time_s)
    for isource in compiled.isources:
        if source_interval is not None:
            # transient: deliver the exact waveform charge per step
            isource.stamp_average(system, index, *source_interval)
        else:
            isource.stamp_source(system, index, time_s)
    for finfet in compiled.finfets:
        finfet.stamp_nonlinear(system, index, v_guess)
    if gmin > 0:
        system.add_gmin(gmin, targets=gmin_targets)
    return system


def _newton(
    compiled: CompiledCircuit,
    v_start: np.ndarray,
    time_s: float,
    gmin: float,
    max_iterations: int,
    tolerance_v: float,
    stamp_extra=None,
    gmin_targets=None,
    source_interval=None,
):
    """Damped Newton iteration; returns the converged solution vector.

    The per-iteration voltage clamp exists to tame the exponential
    subthreshold region of the FinFET stamps; a circuit with no
    nonlinear devices is solved exactly in one step, and clamping that
    step would only slow (or, for solutions many volts away, prevent)
    convergence -- so damping applies only when FinFETs are present.
    """
    damped = len(compiled.finfets) > 0
    v = v_start.copy()
    for iteration in range(max_iterations):
        system = _assemble(
            compiled, v, time_s, gmin, gmin_targets, source_interval
        )
        if stamp_extra is not None:
            stamp_extra(system, v)
        v_new = system.solve()
        delta = v_new - v
        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
        if damped and max_delta > _MAX_STEP_V:
            v = v + delta * (_MAX_STEP_V / max_delta)
            continue
        v = v_new
        if max_delta < tolerance_v:
            return v, iteration + 1
    raise ConvergenceError(
        f"Newton failed after {max_iterations} iterations "
        f"(last |dV| = {max_delta:.3e} V)",
        iterations=max_iterations,
        residual=max_delta,
    )


def solve_dc(
    circuit: Circuit,
    initial_guess: Optional[Dict[str, float]] = None,
    time_s: float = 0.0,
    max_iterations: int = 200,
    tolerance_v: float = 1.0e-9,
) -> DcSolution:
    """Find a DC operating point.

    Parameters
    ----------
    circuit:
        The netlist (capacitors are open at DC).
    initial_guess:
        Node-name -> volts nodeset steering Newton toward the wanted
        equilibrium of a multistable circuit.
    time_s:
        Time at which source waveforms are evaluated (default 0).
    """
    compiled = circuit.compile()
    v = np.zeros(compiled.size, dtype=np.float64)
    if initial_guess:
        for name, volts in initial_guess.items():
            idx = compiled.voltage_index(name)
            if idx >= 0:
                v[idx] = float(volts)

    # gmin pulls every node toward its nodeset value (0 when unset):
    # this keeps the continuation on the caller-selected equilibrium
    # branch of multistable circuits (an SRAM cell has three).
    gmin_targets = v[: compiled.n_nodes].copy()
    last_error = None
    for gmin in _GMIN_SCHEDULE:
        try:
            v, _ = _newton(
                compiled,
                v,
                time_s,
                gmin,
                max_iterations,
                tolerance_v,
                gmin_targets=gmin_targets,
            )
            last_error = None
        except ConvergenceError as exc:
            last_error = exc
            continue
    if last_error is not None:
        raise last_error
    return DcSolution(compiled, v)
