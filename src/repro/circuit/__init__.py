"""A compact SPICE-substitute: netlists, MNA, DC and transient analysis."""

from .dc import DcSolution, solve_dc
from .elements import (
    GROUND,
    Capacitor,
    CurrentSource,
    FinFET,
    Resistor,
    VoltageSource,
)
from .mna import MnaSystem
from .netlist import Circuit, CompiledCircuit
from .spice_io import (
    circuit_to_spice,
    read_spice,
    spice_to_circuit,
    write_spice,
)
from .transient import (
    TransientResult,
    make_strike_time_grid,
    make_time_grid,
    run_transient,
)
from .waveform import (
    Dc,
    DoubleExponential,
    Pwl,
    RectPulse,
    TriangularPulse,
    Waveform,
    pulse_from_charge,
)

__all__ = [
    "Circuit",
    "CompiledCircuit",
    "circuit_to_spice",
    "spice_to_circuit",
    "write_spice",
    "read_spice",
    "MnaSystem",
    "solve_dc",
    "DcSolution",
    "run_transient",
    "TransientResult",
    "make_time_grid",
    "make_strike_time_grid",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "FinFET",
    "GROUND",
    "Waveform",
    "Dc",
    "RectPulse",
    "TriangularPulse",
    "DoubleExponential",
    "Pwl",
    "pulse_from_charge",
]
