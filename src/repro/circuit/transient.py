"""Nonlinear transient analysis.

Fixed user-supplied time grid (so strike studies can refine steps
around the femtosecond-scale pulse and relax afterwards), trapezoidal
integration with a backward-Euler first step (and BE fallback on
non-convergence), full Newton at every step.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import CircuitError, ConvergenceError
from .dc import DcSolution, _newton, solve_dc
from .mna import MnaSystem
from .netlist import Circuit, CompiledCircuit


class TransientResult:
    """Waveforms from a transient run."""

    def __init__(self, compiled: CompiledCircuit, times_s: np.ndarray, solutions: np.ndarray):
        self._compiled = compiled
        self.times_s = times_s
        self._solutions = solutions  # (n_steps, size)

    def voltage(self, node_name: str) -> np.ndarray:
        """Waveform of a node voltage [V]."""
        index = self._compiled.voltage_index(node_name)
        if index < 0:
            return np.zeros_like(self.times_s)
        return self._solutions[:, index].copy()

    def final_voltage(self, node_name: str) -> float:
        """Node voltage at the last time point."""
        return float(self.voltage(node_name)[-1])

    def voltages(self) -> Dict[str, np.ndarray]:
        """All node waveforms by name."""
        return {
            name: self.voltage(name)
            for name in self._compiled.circuit.node_names
            if name != "0"
        }

    def __len__(self) -> int:
        return len(self.times_s)


def make_time_grid(t_stop_s: float, dt_s: float) -> np.ndarray:
    """Uniform grid from 0 to ``t_stop_s`` with step ``dt_s``."""
    if t_stop_s <= 0 or dt_s <= 0 or dt_s > t_stop_s:
        raise CircuitError("need 0 < dt <= t_stop")
    n = int(round(t_stop_s / dt_s))
    return np.linspace(0.0, n * dt_s, n + 1)


def make_strike_time_grid(
    pulse_delay_s: float,
    pulse_width_s: float,
    settle_s: float,
    fine_steps: int = 40,
    coarse_steps: int = 400,
) -> np.ndarray:
    """Two-resolution grid for strike simulations.

    Fine steps resolve ``[delay, delay + 2*width]`` (the pulse and its
    immediate aftermath); coarse steps cover the settling tail where
    the cell's regenerative feedback decides the flip.
    """
    if pulse_width_s <= 0 or settle_s <= 0:
        raise CircuitError("pulse width and settle time must be positive")
    pre = (
        np.linspace(0.0, pulse_delay_s, 8, endpoint=False)
        if pulse_delay_s > 0
        else np.array([0.0])
    )
    fine_end = pulse_delay_s + 2.0 * pulse_width_s
    fine = np.linspace(pulse_delay_s, fine_end, fine_steps, endpoint=False)
    coarse = np.linspace(fine_end, pulse_delay_s + settle_s, coarse_steps)
    grid = np.unique(np.concatenate([pre, fine, coarse]))
    return grid


def run_transient(
    circuit: Circuit,
    times_s,
    initial_conditions: Optional[Dict[str, float]] = None,
    from_dc: bool = True,
    method: str = "trap",
    max_iterations: int = 100,
    tolerance_v: float = 1.0e-9,
) -> TransientResult:
    """Integrate the circuit over an explicit time grid.

    Parameters
    ----------
    circuit:
        The netlist.
    times_s:
        Strictly increasing time points starting at the initial time.
    initial_conditions:
        Node voltages seeding the initial state.  With ``from_dc`` they
        act as a nodeset (Newton converges to the nearest equilibrium);
        without, they are taken literally (SPICE ``UIC``).
    method:
        ``"trap"`` (default; BE first step) or ``"be"`` throughout.
    """
    if method not in ("trap", "be"):
        raise CircuitError(f"unknown integration method {method!r}")
    times = np.asarray(times_s, dtype=np.float64)
    if times.ndim != 1 or len(times) < 2 or np.any(np.diff(times) <= 0):
        raise CircuitError("times must be a strictly increasing 1-D grid")

    compiled = circuit.compile()

    # -- initial state ------------------------------------------------------
    if from_dc:
        dc = solve_dc(
            circuit,
            initial_guess=initial_conditions,
            time_s=float(times[0]),
            tolerance_v=tolerance_v,
        )
        v = dc.raw
    else:
        v = np.zeros(compiled.size, dtype=np.float64)
        if initial_conditions:
            for name, volts in initial_conditions.items():
                idx = compiled.voltage_index(name)
                if idx >= 0:
                    v[idx] = float(volts)

    solutions = np.empty((len(times), compiled.size), dtype=np.float64)
    solutions[0] = v

    # per-capacitor companion state: branch current at previous step
    cap_currents = np.zeros(len(compiled.capacitors), dtype=np.float64)

    for step in range(1, len(times)):
        t_now = float(times[step])
        dt = t_now - float(times[step - 1])
        step_method = "be" if (step == 1 and method == "trap") else method
        v_prev = solutions[step - 1]

        def stamp_caps(system: MnaSystem, v_iter, _method=step_method, _dt=dt, _v_prev=v_prev):
            for cap_idx, cap in enumerate(compiled.capacitors):
                cap.stamp_companion(
                    system,
                    compiled.node_index,
                    _dt,
                    _v_prev,
                    cap_currents[cap_idx],
                    _method,
                )

        interval = (float(times[step - 1]), t_now)
        try:
            v, _ = _newton(
                compiled,
                v_prev.copy(),
                t_now,
                0.0,
                max_iterations,
                tolerance_v,
                stamp_extra=stamp_caps,
                source_interval=interval,
            )
        except ConvergenceError:
            # BE fallback: more dissipative, almost always converges.
            if step_method == "trap":
                step_method = "be"
                v, _ = _newton(
                    compiled,
                    v_prev.copy(),
                    t_now,
                    0.0,
                    max_iterations,
                    tolerance_v,
                    stamp_extra=stamp_caps,
                    source_interval=interval,
                )
            else:
                raise

        # update companion currents for the next step
        for cap_idx, cap in enumerate(compiled.capacitors):
            a = compiled.voltage_index(cap.node_a)
            b = compiled.voltage_index(cap.node_b)
            v_ab_now = MnaSystem.voltage_between(v, a, b)
            v_ab_prev = MnaSystem.voltage_between(v_prev, a, b)
            if step_method == "be":
                cap_currents[cap_idx] = (
                    cap.capacitance_f / dt * (v_ab_now - v_ab_prev)
                )
            else:
                cap_currents[cap_idx] = (
                    2.0 * cap.capacitance_f / dt * (v_ab_now - v_ab_prev)
                    - cap_currents[cap_idx]
                )

        solutions[step] = v

    return TransientResult(compiled, times, solutions)
