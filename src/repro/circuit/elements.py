"""Circuit elements and their MNA stamps.

Elements reference nodes by *name*; index resolution happens when a
:class:`~repro.circuit.netlist.Circuit` is compiled.  Each element
implements the subset of the stamp API it participates in:

* ``stamp_static``      -- linear resistive contributions (R),
* ``stamp_source``      -- time-dependent independent sources (V, I),
* ``stamp_companion``   -- charge-storage companion models (C),
* ``stamp_nonlinear``   -- Newton linearization (FinFET).

Sign conventions
----------------
* :class:`CurrentSource` drives ``value(t)`` amperes *out of*
  ``node_from`` and *into* ``node_to``.
* A FinFET's ``ids`` is the current flowing drain -> source through the
  channel (see :mod:`repro.devices.finfet`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..devices.finfet import FinFETModel
from ..errors import CircuitError
from .waveform import Dc, Waveform

GROUND = "0"


def _as_waveform(value) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return Dc(float(value))


@dataclass
class Resistor:
    """Linear resistor between two nodes [ohm]."""

    name: str
    node_a: str
    node_b: str
    resistance_ohm: float

    def __post_init__(self):
        if self.resistance_ohm <= 0:
            raise CircuitError(f"resistor {self.name}: resistance must be positive")

    def stamp_static(self, system, index):
        g = 1.0 / self.resistance_ohm
        a = index[self.node_a]
        b = index[self.node_b]
        system.add_conductance(a, b, g)


@dataclass
class Capacitor:
    """Linear capacitor between two nodes [F].

    Transient integration uses the standard companion models:
    backward-Euler ``G = C/h`` and trapezoidal ``G = 2C/h``.
    """

    name: str
    node_a: str
    node_b: str
    capacitance_f: float

    def __post_init__(self):
        if self.capacitance_f <= 0:
            raise CircuitError(f"capacitor {self.name}: capacitance must be positive")

    def stamp_companion(self, system, index, dt, v_prev, i_prev, method):
        a = index[self.node_a]
        b = index[self.node_b]
        v_ab_prev = system.voltage_between(v_prev, a, b)
        if method == "be":
            g = self.capacitance_f / dt
            i_eq = g * v_ab_prev
        elif method == "trap":
            g = 2.0 * self.capacitance_f / dt
            i_eq = g * v_ab_prev + i_prev
        else:
            raise CircuitError(f"unknown integration method {method!r}")
        system.add_conductance(a, b, g)
        # companion current source pushes i_eq from b into a
        system.add_current(a, i_eq)
        system.add_current(b, -i_eq)
        return g

    def branch_current(self, g, v_now, i_eq_components):
        """Device current through the capacitor after a solved step."""
        v_ab_now, i_eq = i_eq_components
        return g * v_ab_now - i_eq


@dataclass
class VoltageSource:
    """Independent voltage source (adds one MNA branch unknown)."""

    name: str
    node_pos: str
    node_neg: str
    waveform: Waveform

    def __init__(self, name, node_pos, node_neg, value):
        self.name = name
        self.node_pos = node_pos
        self.node_neg = node_neg
        self.waveform = _as_waveform(value)

    def stamp_source(self, system, index, branch_row, time_s):
        p = index[self.node_pos]
        n = index[self.node_neg]
        system.add_branch(branch_row, p, n)
        system.set_branch_value(branch_row, float(self.waveform.value(time_s)))


@dataclass
class CurrentSource:
    """Independent current source: ``value(t)`` flows from -> to."""

    name: str
    node_from: str
    node_to: str
    waveform: Waveform

    def __init__(self, name, node_from, node_to, value):
        self.name = name
        self.node_from = node_from
        self.node_to = node_to
        self.waveform = _as_waveform(value)

    def stamp_source(self, system, index, time_s):
        i = float(self.waveform.value(time_s))
        system.add_current(index[self.node_from], -i)
        system.add_current(index[self.node_to], i)

    def stamp_average(self, system, index, t0_s, t1_s):
        """Stamp the step-average current: exact charge per step.

        A fixed time grid can straddle fast pulse edges; stamping
        ``charge_between / dt`` guarantees the delivered charge matches
        the waveform integral no matter how the grid aligns (critical
        for the femtosecond strike pulses of the paper's eq. 3).
        """
        dt = t1_s - t0_s
        i = self.waveform.charge_between(t0_s, t1_s) / dt if dt > 0 else 0.0
        system.add_current(index[self.node_from], -i)
        system.add_current(index[self.node_to], i)


@dataclass
class FinFET:
    """A FinFET instance: three terminals + model card.

    ``nfin`` multiplies the per-fin model current; ``vth_shift_v``
    injects per-device process variation.  Gate capacitance is *not*
    stamped here -- netlist builders add explicit capacitors (keeps the
    nonlinear stamp purely resistive and the charge bookkeeping
    transparent).
    """

    name: str
    drain: str
    gate: str
    source: str
    model: FinFETModel
    nfin: int = 1
    vth_shift_v: float = 0.0

    def __post_init__(self):
        if self.nfin < 1:
            raise CircuitError(f"finfet {self.name}: nfin must be >= 1")

    _DELTA_V = 1.0e-6

    def current(self, vd, vg, vs) -> float:
        """Drain->source current at a bias point [A]."""
        return self.nfin * float(
            self.model.ids(vd, vg, vs, vth_shift=self.vth_shift_v)
        )

    def stamp_nonlinear(self, system, index, v_guess):
        """Newton linearization around the iterate ``v_guess``."""
        d = index[self.drain]
        g = index[self.gate]
        s = index[self.source]
        vd = system.voltage_at(v_guess, d)
        vg = system.voltage_at(v_guess, g)
        vs = system.voltage_at(v_guess, s)

        i0 = self.current(vd, vg, vs)
        h = self._DELTA_V
        gd = (self.current(vd + h, vg, vs) - self.current(vd - h, vg, vs)) / (2 * h)
        gm = (self.current(vd, vg + h, vs) - self.current(vd, vg - h, vs)) / (2 * h)
        gs = (self.current(vd, vg, vs + h) - self.current(vd, vg, vs - h)) / (2 * h)

        # i(v) ~ i0 + gd dVd + gm dVg + gs dVs ; current leaves drain,
        # enters source.
        i_lin = i0 - gd * vd - gm * vg - gs * vs
        system.add_jacobian(d, d, gd)
        system.add_jacobian(d, g, gm)
        system.add_jacobian(d, s, gs)
        system.add_jacobian(s, d, -gd)
        system.add_jacobian(s, g, -gm)
        system.add_jacobian(s, s, -gs)
        system.add_current(d, -i_lin)
        system.add_current(s, i_lin)
