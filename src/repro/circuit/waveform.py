"""Time-domain stimulus waveforms for independent sources.

The paper models the radiation-induced parasitic current as a
rectangular pulse (eq. 3, Fig. 3(b)); Section 4 additionally studies
triangular pulses, and circuit-level prior work [17] uses the classic
double-exponential.  All three are provided, plus DC and piecewise
linear, behind one tiny interface: ``value(t)`` (vectorized) and
``charge()`` (the integral that, per the paper, is the only parameter
that matters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


class Waveform:
    """Interface: a scalar function of time [s] with a known integral."""

    def value(self, time_s):
        """Waveform value at time(s) [s] (vectorized)."""
        raise NotImplementedError

    def charge(self) -> float:
        """Integral over all time -- the delivered charge for a current."""
        raise NotImplementedError

    def charge_between(self, t0_s: float, t1_s: float) -> float:
        """Integral over ``[t0, t1]`` -- used by the transient solver to
        deliver the *exact* source charge per step regardless of how the
        time grid aligns with waveform edges.  Subclasses provide
        analytic forms; this fallback integrates numerically."""
        if t1_s <= t0_s:
            return 0.0
        grid = np.linspace(t0_s, t1_s, 65)
        return float(np.trapezoid(self.value(grid), grid))

    def __call__(self, time_s):
        return self.value(time_s)


@dataclass(frozen=True)
class Dc(Waveform):
    """Constant value (charge is undefined/infinite; reported as inf)."""

    level: float = 0.0

    def value(self, time_s):
        return np.full_like(np.asarray(time_s, dtype=np.float64), self.level)

    def charge(self) -> float:
        return math.inf if self.level != 0.0 else 0.0

    def charge_between(self, t0_s: float, t1_s: float) -> float:
        return self.level * max(t1_s - t0_s, 0.0)


@dataclass(frozen=True)
class RectPulse(Waveform):
    """Rectangular pulse: ``amplitude`` on ``[delay, delay + width]``.

    This is the paper's parasitic current model (eq. 3):
    ``amplitude = Q / width`` with ``width`` the carrier transit time.
    """

    amplitude: float
    width_s: float
    delay_s: float = 0.0

    def __post_init__(self):
        if self.width_s <= 0:
            raise ConfigError("rectangular pulse width must be positive")
        if self.delay_s < 0:
            raise ConfigError("pulse delay cannot be negative")

    @classmethod
    def from_charge(cls, charge_c: float, width_s: float, delay_s: float = 0.0):
        """Build the paper's pulse: amplitude I = Q / tau (eq. 3)."""
        if width_s <= 0:
            raise ConfigError("pulse width must be positive")
        return cls(amplitude=charge_c / width_s, width_s=width_s, delay_s=delay_s)

    def value(self, time_s):
        t = np.asarray(time_s, dtype=np.float64)
        inside = (t >= self.delay_s) & (t < self.delay_s + self.width_s)
        return np.where(inside, self.amplitude, 0.0)

    def charge(self) -> float:
        return self.amplitude * self.width_s

    def charge_between(self, t0_s: float, t1_s: float) -> float:
        lo = max(t0_s, self.delay_s)
        hi = min(t1_s, self.delay_s + self.width_s)
        return self.amplitude * max(hi - lo, 0.0)


@dataclass(frozen=True)
class TriangularPulse(Waveform):
    """Symmetric triangular pulse peaking at ``delay + width/2``."""

    peak: float
    width_s: float
    delay_s: float = 0.0

    def __post_init__(self):
        if self.width_s <= 0:
            raise ConfigError("triangular pulse width must be positive")
        if self.delay_s < 0:
            raise ConfigError("pulse delay cannot be negative")

    @classmethod
    def from_charge(cls, charge_c: float, width_s: float, delay_s: float = 0.0):
        """Triangle carrying ``charge_c``: peak = 2 Q / width."""
        if width_s <= 0:
            raise ConfigError("pulse width must be positive")
        return cls(peak=2.0 * charge_c / width_s, width_s=width_s, delay_s=delay_s)

    def value(self, time_s):
        t = np.asarray(time_s, dtype=np.float64)
        x = (t - self.delay_s) / self.width_s
        rising = 2.0 * x
        falling = 2.0 * (1.0 - x)
        shape = np.where(x < 0.5, rising, falling)
        inside = (x >= 0.0) & (x <= 1.0)
        return np.where(inside, self.peak * shape, 0.0)

    def charge(self) -> float:
        return 0.5 * self.peak * self.width_s

    def _cumulative(self, t_s: float) -> float:
        """Integral from -inf to ``t`` of the triangle."""
        x = (t_s - self.delay_s) / self.width_s
        if x <= 0.0:
            return 0.0
        if x >= 1.0:
            return self.charge()
        total = self.charge()
        if x <= 0.5:
            return total * 2.0 * x * x
        return total * (1.0 - 2.0 * (1.0 - x) ** 2)

    def charge_between(self, t0_s: float, t1_s: float) -> float:
        if t1_s <= t0_s:
            return 0.0
        return self._cumulative(t1_s) - self._cumulative(t0_s)


@dataclass(frozen=True)
class DoubleExponential(Waveform):
    """The classic SEU current model of Baumann/Messenger [17].

    ``I(t) = I0 * (exp(-t/tau_fall) - exp(-t/tau_rise))`` for t >= delay.
    """

    i0: float
    tau_rise_s: float
    tau_fall_s: float
    delay_s: float = 0.0

    def __post_init__(self):
        if self.tau_rise_s <= 0 or self.tau_fall_s <= 0:
            raise ConfigError("double-exponential time constants must be positive")
        if self.tau_fall_s <= self.tau_rise_s:
            raise ConfigError("tau_fall must exceed tau_rise")
        if self.delay_s < 0:
            raise ConfigError("pulse delay cannot be negative")

    @classmethod
    def from_charge(
        cls,
        charge_c: float,
        tau_rise_s: float,
        tau_fall_s: float,
        delay_s: float = 0.0,
    ):
        """Double exponential carrying total charge ``charge_c``."""
        if tau_fall_s <= tau_rise_s or tau_rise_s <= 0:
            raise ConfigError("need 0 < tau_rise < tau_fall")
        i0 = charge_c / (tau_fall_s - tau_rise_s)
        return cls(i0=i0, tau_rise_s=tau_rise_s, tau_fall_s=tau_fall_s, delay_s=delay_s)

    def value(self, time_s):
        t = np.asarray(time_s, dtype=np.float64) - self.delay_s
        with np.errstate(over="ignore"):
            shape = np.exp(-t / self.tau_fall_s) - np.exp(-t / self.tau_rise_s)
        return np.where(t >= 0.0, self.i0 * shape, 0.0)

    def charge(self) -> float:
        return self.i0 * (self.tau_fall_s - self.tau_rise_s)

    def _cumulative(self, t_s: float) -> float:
        t = t_s - self.delay_s
        if t <= 0.0:
            return 0.0
        fall = self.tau_fall_s * (1.0 - math.exp(-t / self.tau_fall_s))
        rise = self.tau_rise_s * (1.0 - math.exp(-t / self.tau_rise_s))
        return self.i0 * (fall - rise)

    def charge_between(self, t0_s: float, t1_s: float) -> float:
        if t1_s <= t0_s:
            return 0.0
        return self._cumulative(t1_s) - self._cumulative(t0_s)


@dataclass(frozen=True)
class Pwl(Waveform):
    """Piecewise-linear waveform through ``(times, values)`` breakpoints.

    Held constant outside the breakpoint range (SPICE PWL semantics).
    """

    times_s: tuple
    values: tuple

    def __init__(self, times_s, values):
        times = tuple(float(t) for t in times_s)
        vals = tuple(float(v) for v in values)
        if len(times) != len(vals) or len(times) < 2:
            raise ConfigError("PWL needs >= 2 matching breakpoints")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigError("PWL times must be strictly increasing")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "values", vals)

    def value(self, time_s):
        return np.interp(
            np.asarray(time_s, dtype=np.float64), self.times_s, self.values
        )

    def charge(self) -> float:
        return float(np.trapezoid(self.values, self.times_s))


def pulse_from_charge(
    shape: str, charge_c: float, width_s: float, delay_s: float = 0.0
) -> Waveform:
    """Factory for the Section 4 pulse-shape experiment.

    ``shape`` is ``"rect"``, ``"triangle"`` or ``"dexp"``; every shape
    carries exactly ``charge_c`` so POF comparisons isolate the shape.
    For ``dexp``, ``width_s`` is interpreted as the fall time constant
    with a 10x faster rise.
    """
    if shape == "rect":
        return RectPulse.from_charge(charge_c, width_s, delay_s)
    if shape == "triangle":
        return TriangularPulse.from_charge(charge_c, width_s, delay_s)
    if shape == "dexp":
        return DoubleExponential.from_charge(
            charge_c, tau_rise_s=width_s / 10.0, tau_fall_s=width_s, delay_s=delay_s
        )
    raise ConfigError(f"unknown pulse shape {shape!r}")
