"""The classic circuit-level SER baseline (paper related work [14, 17]).

Circuit-level-only studies estimate SER without any device/layout
Monte Carlo:

1. extract the cell's critical charge ``Qcrit`` with a canonical
   current source (the double exponential of Baumann [17]),
2. plug it into the empirical Hazucha-Svensson rate model

       SER = F * A_sens * exp(-Qcrit / Qs)

   where ``F`` is the particle flux, ``A_sens`` the sensitive area and
   ``Qs`` the technology's charge-collection slope.

What this baseline *cannot* produce -- and the paper's cross-layer flow
can -- is the SEU/MBU decomposition, the per-species energy dependence,
and the layout-driven multi-cell geometry.  The ablation bench compares
both on the same technology card.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..layout import SramArrayLayout
from ..physics import spectrum_for
from ..sram.cell import SramCellDesign
from ..sram.fastcell import FastCell
from ..units import nm_to_cm, per_second_to_fit


@dataclass
class CircuitLevelSerModel:
    """Hazucha-Svensson-style SER estimate from Qcrit alone.

    Parameters
    ----------
    design:
        Cell design (technology card).
    collection_slope_c:
        The ``Qs`` of the exponential [C].  Defaults to the mean
        collected charge of a representative strike, which is what a
        circuit-level study would calibrate from a single device
        simulation or from literature.
    pulse_width_s:
        Width of the double-exponential used for Qcrit extraction
        (the baseline papers use ~100 ps collection tails; the flip
        outcome is width-insensitive per the paper's Section 4).
    kernel / early_exit:
        :class:`~repro.sram.fastcell.FastCell` evaluation strategy for
        the pulse bisection; the defaults ("fused", off) are
        bit-identical to the exact per-role kernel.
    """

    design: SramCellDesign
    collection_slope_c: float = 6.0e-17
    pulse_width_s: float = 1.0e-12
    kernel: str = "fused"
    early_exit: bool = False

    def __post_init__(self):
        if self.collection_slope_c <= 0:
            raise ConfigError("collection slope must be positive")
        if self.pulse_width_s <= 0:
            raise ConfigError("pulse width must be positive")

    def critical_charge_c(self, vdd_v: float) -> float:
        """Qcrit via the nominal cell and a resolved current pulse."""
        cell = FastCell(
            self.design, vdd_v,
            kernel=self.kernel, early_exit=self.early_exit,
        )
        shifts = np.zeros((1, 6))
        settled = cell.settle(shifts)
        lo, hi = 1.0e-18, 5.0e-14
        for _ in range(30):
            mid = np.sqrt(lo * hi)
            flipped = cell.run_pulse(
                np.array([[mid, 0.0, 0.0]]),
                shifts,
                pulse_width_s=self.pulse_width_s,
                settled=settled,
            )[0]
            if flipped:
                hi = mid
            else:
                lo = mid
        return float(np.sqrt(lo * hi))

    def fit_rate(
        self,
        particle_name: str,
        vdd_v: float,
        layout: Optional[SramArrayLayout] = None,
    ) -> float:
        """Baseline FIT estimate for one particle species.

        ``F`` is the species' total ground-level flux; ``A_sens`` the
        summed sensitive-fin footprint of the array (a circuit-level
        study would use a drawn-diffusion estimate exactly like this).
        """
        layout = layout if layout is not None else SramArrayLayout()
        spectrum = spectrum_for(particle_name)
        flux = spectrum.integral_flux(spectrum.e_min_mev, spectrum.e_max_mev)

        sensitive = layout.packed_boxes[layout.fin_strike >= 0]
        widths_cm = nm_to_cm(sensitive[:, 3] - sensitive[:, 0])
        lengths_cm = nm_to_cm(sensitive[:, 4] - sensitive[:, 1])
        area_cm2 = float(np.sum(widths_cm * lengths_cm))

        qcrit = self.critical_charge_c(vdd_v)
        rate_per_s = flux * area_cm2 * np.exp(
            -qcrit / self.collection_slope_c
        )
        return per_second_to_fit(rate_per_s)

    def fit_series(
        self, particle_name: str, vdd_values: Sequence[float]
    ) -> np.ndarray:
        """Baseline FIT at each Vdd (one Qcrit extraction per point)."""
        return np.array(
            [self.fit_rate(particle_name, float(v)) for v in vdd_values]
        )
