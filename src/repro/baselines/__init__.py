"""Baseline SER estimators from the paper's related work.

The paper positions its cross-layer flow against circuit-level-only
approaches ([14], [17]): extract the cell's critical charge with a
double-exponential current source and fold it into an empirical SER
formula.  :mod:`repro.baselines.circuit_level` implements that
approach so the two can be compared on the same technology card.
"""

from .circuit_level import CircuitLevelSerModel

__all__ = ["CircuitLevelSerModel"]
