"""Physical layout: 6T thin cell, tiled SRAM arrays, SVG rendering."""

from .array import DATA_PATTERNS, SramArrayLayout
from .celllayout import CellLayout
from .render import array_layout_svg, write_layout_svg

__all__ = [
    "CellLayout",
    "SramArrayLayout",
    "DATA_PATTERNS",
    "array_layout_svg",
    "write_layout_svg",
]
