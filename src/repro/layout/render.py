"""SVG rendering of cell and array layouts.

Dependency-free visual inspection of the geometry the Monte Carlo
actually sees: fin boxes colored by sensitivity (and by which strike
current a hit feeds), cell boundaries, and a scale bar.  Output is a
plain SVG string/file viewable in any browser.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..errors import ConfigError
from ..sram.cell import ROLES
from .array import SramArrayLayout

#: Fill colors per strike index (I1/I2/I3) and for insensitive fins.
_STRIKE_COLORS = {0: "#d62728", 1: "#ff7f0e", 2: "#e377c2", -1: "#9aa5b1"}
_STRIKE_LABELS = {0: "I1", 1: "I2", 2: "I3", -1: "off-state-safe"}


def array_layout_svg(
    layout: SramArrayLayout,
    scale: float = 2.0,
    show_labels: bool = True,
) -> str:
    """Render an array layout as an SVG string.

    Parameters
    ----------
    layout:
        The array to draw.
    scale:
        Pixels per nanometre... of drawing (2.0 makes a 9x9 array
        ~2700 px wide; reduce for big arrays).
    show_labels:
        Draw role names inside each fin of cell (0, 0) plus a legend.
    """
    if scale <= 0:
        raise ConfigError("scale must be positive")
    margin = 40.0
    width = layout.width_nm * scale + 2 * margin
    height = layout.height_nm * scale + 2 * margin

    def sx(x_nm):
        return margin + x_nm * scale

    def sy(y_nm):
        # SVG y grows downward; flip so the layout reads like a plot
        return margin + (layout.height_nm - y_nm) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]

    # cell boundaries
    for row in range(layout.n_rows + 1):
        y = sy(row * layout.cell.height_nm)
        parts.append(
            f'<line x1="{sx(0):.1f}" y1="{y:.1f}" '
            f'x2="{sx(layout.width_nm):.1f}" y2="{y:.1f}" '
            'stroke="#d0d5da" stroke-width="1"/>'
        )
    for col in range(layout.n_cols + 1):
        x = sx(col * layout.cell.width_nm)
        parts.append(
            f'<line x1="{x:.1f}" y1="{sy(0):.1f}" '
            f'x2="{x:.1f}" y2="{sy(layout.height_nm):.1f}" '
            'stroke="#d0d5da" stroke-width="1"/>'
        )

    # fins
    for box, strike, role in zip(
        layout.fin_boxes, layout.fin_strike, layout.fin_role
    ):
        color = _STRIKE_COLORS[int(strike)]
        x = sx(box.lo[0])
        y = sy(box.hi[1])
        w = (box.hi[0] - box.lo[0]) * scale
        h = (box.hi[1] - box.lo[1]) * scale
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{color}" fill-opacity="0.85" '
            'stroke="#333" stroke-width="0.5"/>'
        )

    if show_labels:
        # role labels inside cell (0, 0)
        cell0 = [
            (box, role)
            for box, role, cell in zip(
                layout.fin_boxes, layout.fin_role, layout.fin_cell
            )
            if cell == 0
        ]
        for box, role in cell0:
            cx = sx(0.5 * (box.lo[0] + box.hi[0]))
            cy = sy(0.5 * (box.lo[1] + box.hi[1]))
            parts.append(
                f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="10" '
                'text-anchor="middle" dominant-baseline="middle" '
                f'fill="#111">{ROLES[int(role)]}</text>'
            )
        # legend
        for i, (strike, label) in enumerate(sorted(_STRIKE_LABELS.items())):
            x = margin + 8 + i * 130
            parts.append(
                f'<rect x="{x:.0f}" y="8" width="12" height="12" '
                f'fill="{_STRIKE_COLORS[strike]}"/>'
                f'<text x="{x + 16:.0f}" y="18" font-size="12" '
                f'fill="#111">{label}</text>'
            )
        # scale bar: 100 nm
        bar = 100.0 * scale
        y = height - 14
        parts.append(
            f'<line x1="{margin:.0f}" y1="{y:.0f}" '
            f'x2="{margin + bar:.0f}" y2="{y:.0f}" stroke="#111" '
            'stroke-width="2"/>'
            f'<text x="{margin + bar + 6:.0f}" y="{y + 4:.0f}" '
            'font-size="12" fill="#111">100 nm</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def write_layout_svg(
    layout: SramArrayLayout,
    path: Union[str, Path],
    scale: float = 2.0,
    show_labels: bool = True,
) -> Path:
    """Write the rendering to a file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(array_layout_svg(layout, scale, show_labels))
    return path
