"""SRAM memory-array layout: tiled, mirrored 6T cells with a fin index.

The array-level Monte Carlo (paper Section 5) needs, for every fin in
the array: its 3-D box, which cell it belongs to, which device role it
implements, and -- given the stored data pattern -- whether it is
sensitive and which strike current (I1/I2/I3) a hit contributes to.
:class:`SramArrayLayout` precomputes all of that as flat numpy arrays
so the ray-casting kernel is a single vectorized slab test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..geometry import Aabb, stack_boxes
from ..sram.cell import ROLES
from ..units import nm_to_cm
from .celllayout import CellLayout

#: Sensitive roles and their strike indices for a cell storing q=1.
_SENSITIVE_Q1 = {"pd_l": 0, "pu_r": 1, "pg_r": 2}
#: Mirror-image sensitivity for a cell storing q=0.
_SENSITIVE_Q0 = {"pd_r": 0, "pu_l": 1, "pg_l": 2}

DATA_PATTERNS = ("uniform", "checkerboard")


@dataclass
class SramArrayLayout:
    """An n_rows x n_cols array of mirrored 6T cells.

    Physical tiling follows standard practice: cells are mirrored in x
    on odd columns and in y on odd rows so neighbouring cells share
    well/contact structure.  The paper evaluates a 9x9 array ("large
    enough to obtain a realistic ratio for MBU vs. SEU").

    Attributes
    ----------
    n_rows / n_cols:
        Array dimensions in cells.
    cell:
        The cell layout being tiled.
    data_pattern:
        ``"uniform"`` (every cell stores q=1) or ``"checkerboard"``.
    """

    n_rows: int = 9
    n_cols: int = 9
    cell: CellLayout = field(default_factory=CellLayout)
    data_pattern: str = "uniform"
    #: Fin count per device role (defaults to one fin everywhere --
    #: the high-density cell); multi-fin devices draw one collection
    #: volume per fin, all feeding the same strike current.
    nfins: Optional[dict] = None

    def __post_init__(self):
        if self.n_rows < 1 or self.n_cols < 1:
            raise ConfigError("array must have at least one cell")
        if self.data_pattern not in DATA_PATTERNS:
            raise ConfigError(
                f"unknown data pattern {self.data_pattern!r}; "
                f"expected one of {DATA_PATTERNS}"
            )
        if self.nfins is not None:
            unknown = set(self.nfins) - set(ROLES)
            if unknown:
                raise ConfigError(f"unknown roles in nfins: {sorted(unknown)}")
        self._build()

    def _build(self):
        boxes = []
        fin_cell = []
        fin_role = []
        fin_strike = []
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                cell_index = row * self.n_cols + col
                mirror_x = col % 2 == 1
                mirror_y = row % 2 == 1
                origin = np.array(
                    [col * self.cell.width_nm, row * self.cell.height_nm, 0.0]
                )
                stored_one = self.stored_bit(row, col) == 1
                sensitivity = _SENSITIVE_Q1 if stored_one else _SENSITIVE_Q0
                for role in ROLES:
                    nfin = (self.nfins or {}).get(role, 1)
                    for box in self.cell.fin_boxes(
                        role, nfin, mirror_x, mirror_y
                    ):
                        boxes.append(box.translated(origin))
                        fin_cell.append(cell_index)
                        fin_role.append(ROLES.index(role))
                        fin_strike.append(sensitivity.get(role, -1))

        self.fin_boxes = boxes
        self.packed_boxes = stack_boxes(boxes)
        self.fin_cell = np.array(fin_cell, dtype=np.int64)
        self.fin_role = np.array(fin_role, dtype=np.int64)
        self.fin_strike = np.array(fin_strike, dtype=np.int64)

    # -- data pattern ----------------------------------------------------------

    def stored_bit(self, row: int, col: int) -> int:
        """Stored value of a cell under the configured pattern."""
        if self.data_pattern == "uniform":
            return 1
        return 1 if (row + col) % 2 == 0 else 0

    # -- derived geometry -----------------------------------------------------

    @property
    def n_cells(self) -> int:
        """Total cell count."""
        return self.n_rows * self.n_cols

    @property
    def n_fins(self) -> int:
        """Total fin count (6 per cell)."""
        return len(self.fin_boxes)

    @property
    def width_nm(self) -> float:
        """Array extent along x (the paper's Lx)."""
        return self.n_cols * self.cell.width_nm

    @property
    def height_nm(self) -> float:
        """Array extent along y (the paper's Ly)."""
        return self.n_rows * self.cell.height_nm

    def bounding_box(self) -> Aabb:
        """Tight box around all cells (fin height in z)."""
        return Aabb(
            (0.0, 0.0, 0.0),
            (self.width_nm, self.height_nm, self.cell.fin.height_nm),
        )

    def launch_window(self, margin_nm: float = 100.0):
        """``(x_range, y_range, z, area_cm2)`` of the MC launch plane.

        The margin admits oblique tracks that enter the array from the
        side -- exactly the tracks that produce multi-cell upsets.
        """
        if margin_nm < 0:
            raise ConfigError("margin cannot be negative")
        x_range = (-margin_nm, self.width_nm + margin_nm)
        y_range = (-margin_nm, self.height_nm + margin_nm)
        z = self.cell.fin.height_nm + margin_nm
        width_cm = nm_to_cm(x_range[1] - x_range[0])
        height_cm = nm_to_cm(y_range[1] - y_range[0])
        return x_range, y_range, z, width_cm * height_cm

    def area_cm2(self) -> float:
        """Array footprint Lx * Ly [cm^2] (paper eq. 7)."""
        return nm_to_cm(self.width_nm) * nm_to_cm(self.height_nm)

    def sensitive_fin_count(self) -> int:
        """Number of fins that are strike-sensitive under the pattern."""
        return int(np.sum(self.fin_strike >= 0))
