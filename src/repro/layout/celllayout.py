"""Parametric physical layout of the 6T thin cell (paper Fig. 5(b)).

The standard FinFET thin cell places the six transistors on four fin
tracks (fins run along y, the bit-line direction) crossed by two gate
rows: the pass-gate/pull-down pair share the outer fins, the pull-ups
sit on the inner fins.  Exact mask dimensions of the paper's IBM cell
are proprietary; this parametric layout preserves what the array-level
analysis consumes -- per-transistor fin positions, inter-fin pitches,
and cell tiling adjacency (which set the MBU geometry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigError
from ..geometry import Aabb, FinGeometry
from ..sram.cell import ROLES


@dataclass(frozen=True)
class CellLayout:
    """Fin placement of one 6T cell.

    Coordinates are cell-local nanometres, origin at the cell's lower
    left corner; fins run along y (channel current flows along y).

    Attributes
    ----------
    fin:
        Fin body dimensions.
    width_nm / height_nm:
        Cell pitch in x (4 fin tracks) and y (2 gate rows).
    fin_positions:
        Role -> (x_center, y_center) of the device's channel region.
    """

    fin: FinGeometry = field(
        default_factory=lambda: FinGeometry(
            length_nm=20.0, width_nm=10.0, height_nm=30.0
        )
    )
    #: Length [nm] of the charge-collecting fin segment drawn for each
    #: device.  The physical fin is continuous through the gate; the
    #: reverse-biased drain extension collects drift charge beyond the
    #: channel, so the sensitive volume is longer than ``fin.length_nm``
    #: (see :class:`repro.devices.TechnologyCard.collection_length_nm`).
    collection_length_nm: float = 60.0
    #: Pitch between the fins of one multi-fin device [nm].
    device_fin_pitch_nm: float = 24.0
    width_nm: float = 150.0
    height_nm: float = 100.0
    fin_positions: Dict[str, Tuple[float, float]] = field(
        default_factory=lambda: {
            # column 1 (x = 8): pass-gate / pull-down left.  The outer
            # columns hug the cell boundary, so under mirrored tiling
            # neighbouring cells' outer fins sit ~16 nm apart -- the
            # adjacency that makes grazing tracks multi-cell events.
            "pg_l": (8.0, 30.0),
            "pd_l": (8.0, 70.0),
            # column 2: pull-up left
            "pu_l": (56.0, 70.0),
            # column 3: pull-up right
            "pu_r": (94.0, 30.0),
            # column 4 (x = 142): pull-down / pass-gate right
            "pd_r": (142.0, 30.0),
            "pg_r": (142.0, 70.0),
        }
    )

    def __post_init__(self):
        if self.width_nm <= 0 or self.height_nm <= 0:
            raise ConfigError("cell pitches must be positive")
        if self.collection_length_nm < self.fin.length_nm:
            raise ConfigError(
                "collection length cannot be shorter than the channel"
            )
        missing = set(ROLES) - set(self.fin_positions)
        if missing:
            raise ConfigError(f"layout is missing roles: {sorted(missing)}")
        half_w = 0.5 * self.fin.width_nm
        half_l = 0.5 * self.collection_length_nm
        if 2 * half_l > self.height_nm or 2 * half_w > self.width_nm:
            raise ConfigError(
                "collection volume does not fit inside the cell pitch"
            )
        # Re-centre positions whose collection volume would stick out of
        # the cell: the diffusion cannot extend past the cell boundary
        # without merging into the neighbour, so the volume is pushed
        # inward instead (keeps user layouts valid under parameter
        # sweeps of the collection length).
        adjusted = {}
        for role, (x, y) in self.fin_positions.items():
            if not (half_w <= x <= self.width_nm - half_w):
                raise ConfigError(f"{role}: fin x-position outside the cell")
            adjusted[role] = (
                x,
                float(np.clip(y, half_l, self.height_nm - half_l)),
            )
        object.__setattr__(self, "fin_positions", adjusted)

    def fin_box(self, role: str, mirror_x: bool = False, mirror_y: bool = False) -> Aabb:
        """Cell-local fin body box of a role, with optional mirroring.

        Fins run along y: the box spans the fin width in x, the
        charge-collection length in y, and the fin height in z.
        """
        return self.fin_boxes(role, 1, mirror_x, mirror_y)[0]

    def fin_boxes(
        self,
        role: str,
        nfin: int = 1,
        mirror_x: bool = False,
        mirror_y: bool = False,
    ) -> list:
        """All fin body boxes of an ``nfin``-fin device.

        Multi-fin devices place their fins side by side at
        ``device_fin_pitch_nm``, centred on the role's position; each
        fin is an independent charge-collection volume feeding the same
        transistor (a track through any of them contributes to the same
        strike current).
        """
        if nfin < 1:
            raise ConfigError("nfin must be >= 1")
        try:
            x, y = self.fin_positions[role]
        except KeyError:
            raise ConfigError(f"unknown role {role!r}") from None
        if mirror_x:
            x = self.width_nm - x
        if mirror_y:
            y = self.height_nm - y
        half_w = 0.5 * self.fin.width_nm
        half_l = 0.5 * self.collection_length_nm
        boxes = []
        for index in range(nfin):
            offset = (index - 0.5 * (nfin - 1)) * self.device_fin_pitch_nm
            cx = float(np.clip(x + offset, half_w, self.width_nm - half_w))
            boxes.append(
                Aabb(
                    (cx - half_w, y - half_l, 0.0),
                    (cx + half_w, y + half_l, self.fin.height_nm),
                )
            )
        return boxes

    @property
    def area_nm2(self) -> float:
        """Cell footprint [nm^2]."""
        return self.width_nm * self.height_nm
