"""Result records produced by the Monte Carlo transport engine."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TransportResult:
    """Outcome of a batch of particle shots at a target world.

    All arrays have one entry per launched particle.

    Attributes
    ----------
    particle_name:
        Species that was launched.
    energy_mev:
        Launch kinetic energy (common to the whole batch).
    fin_chord_nm:
        Geometric chord length through the charge-collecting fin [nm]
        (0 where the fin was missed).
    fin_deposit_kev:
        Straggled energy deposited in the fin [keV].
    fin_pairs:
        Electron-hole pairs generated in the fin (Fano-sampled counts).
    """

    particle_name: str
    energy_mev: float
    fin_chord_nm: np.ndarray
    fin_deposit_kev: np.ndarray
    fin_pairs: np.ndarray

    def __post_init__(self):
        n = len(self.fin_chord_nm)
        if len(self.fin_deposit_kev) != n or len(self.fin_pairs) != n:
            raise ValueError("per-particle arrays must share a length")

    def __len__(self) -> int:
        return len(self.fin_chord_nm)

    @property
    def hit_mask(self) -> np.ndarray:
        """Boolean mask of particles whose track crossed the fin."""
        return self.fin_chord_nm > 0.0

    @property
    def hit_fraction(self) -> float:
        """Fraction of launched particles that crossed the fin."""
        return float(np.mean(self.hit_mask))

    @property
    def mean_pairs_given_hit(self) -> float:
        """Mean pair count conditional on crossing the fin (0 if no hits)."""
        hits = self.hit_mask
        if not np.any(hits):
            return 0.0
        return float(np.mean(self.fin_pairs[hits]))

    def pairs_given_hit(self) -> np.ndarray:
        """Pair counts of the hitting subset."""
        return self.fin_pairs[self.hit_mask]
