"""Monte Carlo transport of particles through the single-fin world.

This is the library's substitute for the paper's Geant4 step (Section
3.2): particles with random positions and directions are fired at the
3-D SOI fin structure; the energy each track deposits in the fin is
computed from the electronic stopping power with Bohr straggling, after
degrading the kinetic energy through any overburden volumes crossed
first; deposits convert to electron-hole pair counts at 3.6 eV/pair
with Fano statistics.

Straight-line tracks are exact at these energies over <1 um of
material; nuclear reactions are negligible for *direct* ionization
(DESIGN.md Section 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..geometry import RayBatch, SoiFinWorld, chord_lengths, stack_boxes
from ..obs import get_logger, get_registry, kv
from ..physics import (
    ParticleType,
    sample_deposits_kev,
    sample_pairs,
    sample_rays,
)
from .events import TransportResult

_log = get_logger(__name__)


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the device-level Monte Carlo.

    Attributes
    ----------
    direction_law:
        Angular law for launch directions (see
        :mod:`repro.physics.sampling`).
    straggling:
        Sample Bohr straggling (True) or use mean chord deposits.
    fano:
        Sample Fano pair-count statistics (True) or use mean counts.
    degrade_energy:
        Account for energy lost in volumes crossed before the fin.
    """

    direction_law: str = "isotropic"
    straggling: bool = True
    straggling_model: str = "bohr"
    fano: bool = True
    degrade_energy: bool = True


class TransportEngine:
    """Fires particle batches at a :class:`~repro.geometry.SoiFinWorld`."""

    def __init__(self, world: Optional[SoiFinWorld] = None, config: Optional[TransportConfig] = None):
        self.world = world if world is not None else SoiFinWorld()
        self.config = config if config is not None else TransportConfig()
        self._volumes = self.world.volumes
        self._packed_boxes = stack_boxes([v.box for v in self._volumes])
        self._fin_index = next(
            i for i, v in enumerate(self._volumes) if v.material.collects_charge
        )

    def launch(
        self,
        particle: ParticleType,
        energy_mev: float,
        n_particles: int,
        rng: np.random.Generator,
    ) -> TransportResult:
        """Launch ``n_particles`` at kinetic energy ``energy_mev`` [MeV]."""
        if energy_mev <= 0:
            raise ConfigError("launch energy must be positive")
        if n_particles < 1:
            raise ConfigError("need at least one particle")

        bounds = self.world.bounds()
        rays = sample_rays(
            n_particles,
            rng,
            (bounds.lo[0], bounds.hi[0]),
            (bounds.lo[1], bounds.hi[1]),
            self.world.launch_plane_z(),
            law=self.config.direction_law,
        )
        metrics = get_registry()
        if not metrics.enabled:
            return self.transport(particle, energy_mev, rays, rng)
        t0 = time.perf_counter()
        result = self.transport(particle, energy_mev, rays, rng)
        elapsed = time.perf_counter() - t0
        metrics.counter("transport.launches").inc()
        metrics.counter("transport.trials").inc(n_particles)
        metrics.counter("transport.fin_hits").inc(int(np.sum(result.hit_mask)))
        metrics.timer("transport.launch").observe(elapsed)
        _log.debug(
            "transport launch %s",
            kv(
                particle=particle.name,
                energy_mev=float(energy_mev),
                trials=n_particles,
                hit_fraction=result.hit_fraction,
                trials_per_s=n_particles / elapsed if elapsed > 0 else 0.0,
            ),
        )
        return result

    def transport(
        self,
        particle: ParticleType,
        energy_mev: float,
        rays: RayBatch,
        rng: np.random.Generator,
    ) -> TransportResult:
        """Transport an explicit ray batch (used by tests and the LUT)."""
        n = len(rays)
        chords = chord_lengths(rays, self._packed_boxes)  # (n, n_volumes)
        fin_chords = chords[:, self._fin_index]

        if self.config.degrade_energy:
            energy_at_fin = self._energy_at_fin(
                particle, energy_mev, rays, chords, rng
            )
        else:
            energy_at_fin = np.full(n, energy_mev, dtype=np.float64)

        deposits = np.zeros(n, dtype=np.float64)
        active = (fin_chords > 0.0) & (energy_at_fin > 0.0)
        if np.any(active):
            if self.config.straggling:
                deposits[active] = sample_deposits_kev(
                    particle,
                    energy_at_fin[active],
                    fin_chords[active],
                    rng,
                    self._volumes[self._fin_index].material,
                    model=self.config.straggling_model,
                )
            else:
                from ..physics import mean_chord_deposit_kev

                deposits[active] = mean_chord_deposit_kev(
                    particle,
                    energy_at_fin[active],
                    fin_chords[active],
                    self._volumes[self._fin_index].material,
                )

        pairs = np.zeros(n, dtype=np.float64)
        if np.any(active):
            if self.config.fano:
                pairs[active] = sample_pairs(
                    deposits[active],
                    rng,
                    self._volumes[self._fin_index].material,
                )
            else:
                from ..physics import mean_pairs

                pairs[active] = mean_pairs(
                    deposits[active], self._volumes[self._fin_index].material
                )

        return TransportResult(
            particle_name=particle.name,
            energy_mev=float(energy_mev),
            fin_chord_nm=fin_chords,
            fin_deposit_kev=deposits,
            fin_pairs=pairs,
        )

    def _energy_at_fin(
        self,
        particle: ParticleType,
        energy_mev: float,
        rays: RayBatch,
        chords: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Kinetic energy remaining when each track reaches the fin.

        Volumes crossed strictly before the fin (smaller entry parameter
        along the track) degrade the energy by their mean chord deposit.
        For the default world the fin is topmost so this is a no-op; it
        matters when a BEOL overburden is configured or for oblique
        tracks entering through the BOX sidewall.
        """
        from ..geometry.box import _slab_interval
        from ..physics import mean_chord_deposit_kev

        lo = self._packed_boxes[:, :3]
        hi = self._packed_boxes[:, 3:]
        t_near, t_far = _slab_interval(rays.origins, rays.directions, lo, hi)
        t_entry = np.maximum(t_near, 0.0)
        hit = (t_far > t_entry) & (chords > 0.0)
        fin_entry = np.where(
            hit[:, self._fin_index], t_entry[:, self._fin_index], np.inf
        )

        energy = np.full(len(rays), energy_mev, dtype=np.float64)
        for index, volume in enumerate(self._volumes):
            if index == self._fin_index:
                continue
            before_fin = hit[:, index] & (t_entry[:, index] < fin_entry)
            if not np.any(before_fin):
                continue
            loss_kev = mean_chord_deposit_kev(
                particle,
                np.maximum(energy[before_fin], 1e-6),
                chords[before_fin, index],
                volume.material,
            )
            energy[before_fin] = np.maximum(
                energy[before_fin] - loss_kev * 1.0e-3, 0.0
            )
        return energy
