"""Device-level Monte Carlo transport (Geant4 substitute) and the
energy -> electron-yield LUT of paper Fig. 4."""

from .engine import TransportConfig, TransportEngine
from .events import TransportResult
from .lut import ElectronYieldLUT, default_energy_grid

__all__ = [
    "TransportConfig",
    "TransportEngine",
    "TransportResult",
    "ElectronYieldLUT",
    "default_energy_grid",
]
