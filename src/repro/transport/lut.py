"""Electron-yield look-up tables (paper Section 3.2, Fig. 4).

The paper runs 10 M Geant4 trials per energy point "only once to build
up LUTs" mapping particle energy to the number of electron-hole pairs
generated in a fin.  :class:`ElectronYieldLUT` is that artifact: for a
log grid of energies it stores, from Monte Carlo transport,

* the probability that a random track through the launch window
  actually crosses the fin, and
* the empirical distribution of pair counts *conditional on crossing*
  (as an inverse-CDF quantile table, so downstream consumers can sample
  from it in O(1)).

The array-level Monte Carlo (paper Section 5) samples struck-fin pair
counts from this table ("lut" deposition mode), exactly mirroring the
paper's flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError, LookupError_
from ..obs import get_logger, kv, span
from ..obs.convergence import record_bin
from ..parallel import parallel_map, spawn_seeds
from ..physics import ParticleType, get_particle
from .engine import TransportConfig, TransportEngine

_log = get_logger(__name__)

_DEFAULT_QUANTILES = 129

#: RNG granularity of a LUT build: each energy point's trials are
#: partitioned into shards of this fixed size, one spawned child stream
#: per shard, so the tabulated statistics depend only on the seed and
#: ``trials_per_energy`` -- never on the worker count.
TRIALS_PER_SHARD = 100_000


def _shard_sizes(trials: int) -> list:
    full, rest = divmod(trials, TRIALS_PER_SHARD)
    sizes = [TRIALS_PER_SHARD] * full
    if rest:
        sizes.append(rest)
    return sizes


def _lut_shard_task(payload, task):
    """Pool worker: one (energy point, trial shard) transport run."""
    energy_idx, shard_trials, seed = task
    result = payload["engine"].launch(
        payload["particle"],
        float(payload["energies"][energy_idx]),
        shard_trials,
        np.random.default_rng(seed),
    )
    return energy_idx, shard_trials, result.pairs_given_hit()


def lut_shard_encode(result) -> dict:
    """JSON-safe encoding of a LUT build shard for the shard journal."""
    energy_idx, shard_trials, conditional = result
    return {
        "i": int(energy_idx),
        "n": int(shard_trials),
        "pairs": np.asarray(conditional, dtype=np.float64).tolist(),
    }


def lut_shard_decode(payload: dict):
    """Inverse of :func:`lut_shard_encode` (exact: JSON floats round-trip)."""
    return (
        int(payload["i"]),
        int(payload["n"]),
        np.asarray(payload["pairs"], dtype=np.float64),
    )


@dataclass
class ElectronYieldLUT:
    """Energy -> electron-hole pair yield distribution for one species.

    Attributes
    ----------
    particle_name:
        Species the table was built for.
    energies_mev:
        Log-spaced energy grid, shape ``(n_e,)``.
    hit_fraction:
        Per-energy probability that a launched track crosses the fin.
    mean_pairs:
        Per-energy mean pair count conditional on a fin crossing.
    quantiles:
        ``(n_e, n_q)`` inverse CDF of the conditional pair count:
        ``quantiles[i, j]`` is the ``j/(n_q-1)`` quantile at energy i.
    trials_per_energy:
        MC statistics used during the build (bookkeeping).
    degraded:
        True when the build lost trial shards to worker crashes past
        the retry budget: the tabulated statistics are unbiased but
        rest on fewer trials than requested.  Degraded tables are not
        cached (see :meth:`repro.io.ArtifactCache.get_or_build`).
    """

    particle_name: str
    energies_mev: np.ndarray
    hit_fraction: np.ndarray
    mean_pairs: np.ndarray
    quantiles: np.ndarray
    trials_per_energy: int = 0
    degraded: bool = False

    def __post_init__(self):
        self.energies_mev = np.asarray(self.energies_mev, dtype=np.float64)
        self.hit_fraction = np.asarray(self.hit_fraction, dtype=np.float64)
        self.mean_pairs = np.asarray(self.mean_pairs, dtype=np.float64)
        self.quantiles = np.asarray(self.quantiles, dtype=np.float64)
        n_e = len(self.energies_mev)
        if (
            len(self.hit_fraction) != n_e
            or len(self.mean_pairs) != n_e
            or self.quantiles.shape[0] != n_e
        ):
            raise ConfigError("LUT arrays must share the energy-grid length")
        if np.any(np.diff(self.energies_mev) <= 0):
            raise ConfigError("LUT energy grid must be strictly increasing")

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        particle: ParticleType,
        energies_mev,
        trials_per_energy: int,
        rng: np.random.Generator,
        engine: Optional[TransportEngine] = None,
        n_quantiles: int = _DEFAULT_QUANTILES,
        n_jobs: int = 1,
        retry=None,
        journal=None,
        warm_pool: Optional[bool] = None,
        shm: Optional[bool] = None,
    ) -> "ElectronYieldLUT":
        """Run the device-level MC at each grid energy and tabulate.

        The trials of every energy point are partitioned into fixed
        :data:`TRIALS_PER_SHARD` shards, each with its own spawned
        child stream, and the shard results are folded back in shard
        order -- so for a fixed seed the table is bit-identical for any
        ``n_jobs``.  With a ``journal`` attached, completed shards are
        checkpointed and a crashed build resumes bit-identically
        (construct it with :func:`lut_shard_encode` /
        :func:`lut_shard_decode`).

        Parameters
        ----------
        particle:
            Species to launch.
        energies_mev:
            Strictly-increasing energy grid [MeV].
        trials_per_energy:
            MC shots per grid point (the paper uses 1e7; a few 1e4 give
            percent-level conditional means).
        rng:
            Random generator.
        engine:
            Transport engine (default: fresh engine on the default
            14 nm fin world).
        n_quantiles:
            Resolution of the stored inverse CDF.
        n_jobs:
            Worker processes sharing the trial shards (1 = inline,
            0 = one per CPU).
        retry:
            Optional :class:`~repro.parallel.RetryPolicy`.  With
            ``allow_partial=True``, shards lost past the retry budget
            degrade the table (``degraded=True``, statistics folded
            over the surviving trials) instead of aborting the build.
        journal:
            Optional :class:`~repro.parallel.ShardJournal` checkpoint;
            cleared automatically once the build completes undegraded.
        warm_pool / shm:
            Overrides for pool leasing and the shared-memory payload
            plane (``None`` = process defaults).  Transport knobs
            only; the table is bit-identical either way.
        """
        if trials_per_energy < 100:
            raise ConfigError("need >= 100 trials per energy for a usable CDF")
        if n_quantiles < 3:
            raise ConfigError("need >= 3 quantiles")
        engine = engine if engine is not None else TransportEngine()
        energies = np.asarray(energies_mev, dtype=np.float64)

        hit_fraction = np.zeros(len(energies))
        mean_pairs = np.zeros(len(energies))
        quantile_grid = np.linspace(0.0, 1.0, n_quantiles)
        quantiles = np.zeros((len(energies), n_quantiles))

        shard_sizes = _shard_sizes(int(trials_per_energy))
        tasks = [
            (i, size, None)
            for i in range(len(energies))
            for size in shard_sizes
        ]
        seeds = spawn_seeds(rng, len(tasks))
        tasks = [
            (i, size, seed) for (i, size, _), seed in zip(tasks, seeds)
        ]

        with span(
            "yield-lut-build",
            particle=particle.name,
            energies=len(energies),
            trials_per_energy=int(trials_per_energy),
        ):
            shard_results = parallel_map(
                _lut_shard_task,
                tasks,
                payload={
                    "engine": engine,
                    "particle": particle,
                    "energies": energies,
                },
                n_jobs=n_jobs,
                label="yield_lut",
                retry=retry,
                journal=journal,
                # ~2 us per transport trial: lets tiny builds skip
                # pool spin-up (measured slower than inline)
                cost_hint_s=2.0e-6 * sum(shard_sizes) / len(shard_sizes),
                warm_pool=warm_pool,
                shm=shm,
            )
            lost = sum(1 for shard in shard_results if shard is None)
            for i in range(len(energies)):
                # fold the energy point's shards back in shard order,
                # normalizing over the trials that actually completed
                # (== trials_per_energy for an undegraded build, so the
                # bit-identical contract is untouched)
                parts = []
                effective_trials = 0
                for shard in shard_results:
                    if shard is None:
                        continue
                    idx, shard_trials, conditional = shard
                    if idx != i:
                        continue
                    parts.append(conditional)
                    effective_trials += shard_trials
                conditional = (
                    np.concatenate(parts) if parts else np.empty(0)
                )
                n_hits = len(conditional)
                hit_fraction[i] = (
                    n_hits / effective_trials if effective_trials else 0.0
                )
                if effective_trials:
                    record_bin(
                        "yield-lut",
                        trials=int(effective_trials),
                        pof=float(hit_fraction[i]),
                        particle=particle.name,
                        energy_mev=float(energies[i]),
                    )
                _log.debug(
                    "yield LUT energy point %s",
                    kv(
                        particle=particle.name,
                        point=f"{i + 1}/{len(energies)}",
                        energy_mev=float(energies[i]),
                        hit_fraction=hit_fraction[i],
                        mean_pairs=(
                            float(np.mean(conditional)) if n_hits else 0.0
                        ),
                    ),
                )
                if n_hits == 0:
                    # No geometric hits at this statistics level: record a
                    # degenerate (all-zero) distribution rather than
                    # failing.  Queries skip such rows -- see
                    # _collapse_empty_rows.
                    continue
                mean_pairs[i] = float(np.mean(conditional))
                quantiles[i] = np.quantile(conditional, quantile_grid)

        if lost:
            _log.warning(
                "yield LUT degraded %s",
                kv(
                    particle=particle.name,
                    lost_shards=lost,
                    total_shards=len(tasks),
                ),
            )
        elif journal is not None:
            # the statistics are complete and merged -- the checkpoint
            # has served its purpose
            journal.clear()

        return cls(
            particle_name=particle.name,
            energies_mev=energies,
            hit_fraction=hit_fraction,
            mean_pairs=mean_pairs,
            quantiles=quantiles,
            trials_per_energy=int(trials_per_energy),
            degraded=lost > 0,
        )

    # -- queries ---------------------------------------------------------

    def _interp_weights(self, energy_mev: float):
        """Bracketing indices and log-space weight for an energy query."""
        energies = self.energies_mev
        if energy_mev <= energies[0]:
            return 0, 0, 0.0
        if energy_mev >= energies[-1]:
            last = len(energies) - 1
            return last, last, 0.0
        hi = int(np.searchsorted(energies, energy_mev))
        lo = hi - 1
        log_e = np.log(energy_mev)
        weight = (log_e - np.log(energies[lo])) / (
            np.log(energies[hi]) - np.log(energies[lo])
        )
        return lo, hi, float(weight)

    def mean_at(self, energy_mev: float) -> float:
        """Mean conditional pair count, log-interpolated in energy."""
        self._check_energy(energy_mev)
        lo, hi, w = self._interp_weights(energy_mev)
        return float((1.0 - w) * self.mean_pairs[lo] + w * self.mean_pairs[hi])

    def hit_fraction_at(self, energy_mev: float) -> float:
        """Fin-crossing probability, log-interpolated in energy."""
        self._check_energy(energy_mev)
        lo, hi, w = self._interp_weights(energy_mev)
        return float(
            (1.0 - w) * self.hit_fraction[lo] + w * self.hit_fraction[hi]
        )

    def _populated_rows(self) -> np.ndarray:
        """Mask of energy rows whose quantile table saw real hits.

        A zero-hit energy point stores an all-zero placeholder row
        (see :meth:`build`); blending it into an interpolation would
        silently bias sampled pair counts toward zero.
        """
        return self.hit_fraction > 0.0

    def _collapse_bracket(self, lo: int, hi: int, w: float):
        """Remap an interpolation bracket away from empty quantile rows.

        Prefers the populated bracket endpoint; if both endpoints are
        empty, snaps to the nearest populated row.  Returns the bracket
        unchanged when both endpoints are populated (the common case).
        """
        populated = self._populated_rows()
        if populated[lo] and populated[hi]:
            return lo, hi, w
        candidates = np.flatnonzero(populated)
        if len(candidates) == 0:
            raise LookupError_(
                f"LUT for {self.particle_name!r} has no populated energy "
                "rows to sample from"
            )
        if populated[lo]:
            snap = int(lo)
        elif populated[hi]:
            snap = int(hi)
        else:
            position = lo + w * (hi - lo)
            snap = int(candidates[np.argmin(np.abs(candidates - position))])
        _log.warning(
            "empty LUT row skipped in sampling %s",
            kv(
                particle=self.particle_name,
                bracket=f"[{lo},{hi}]",
                fallback_row=snap,
                energy_mev=float(self.energies_mev[snap]),
            ),
        )
        return snap, snap, 0.0

    def sample_pairs(
        self, energy_mev: float, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``n`` conditional pair counts at an energy.

        Inverse-CDF sampling on the stored quantile table, with the two
        bracketing energy rows blended in log-energy.  Empty (zero-hit)
        rows never enter the blend: the query falls back to the nearest
        populated row, with a warning through the ``repro`` logger.
        """
        self._check_energy(energy_mev)
        lo, hi, w = self._interp_weights(energy_mev)
        lo, hi, w = self._collapse_bracket(lo, hi, w)
        row = (1.0 - w) * self.quantiles[lo] + w * self.quantiles[hi]
        u = rng.uniform(0.0, 1.0, size=n)
        positions = u * (len(row) - 1)
        lower = np.floor(positions).astype(int)
        upper = np.minimum(lower + 1, len(row) - 1)
        frac = positions - lower
        return row[lower] * (1.0 - frac) + row[upper] * frac

    def sample_pairs_many(
        self, energies_mev, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample one pair count per entry of an energy array.

        Vectorized counterpart of :meth:`sample_pairs` for
        mixed-energy batches (continuous-spectrum array MC): the two
        bracketing quantile rows of each query are blended in
        log-energy, then inverse-CDF sampled.  As in
        :meth:`sample_pairs`, queries bracketed by empty (zero-hit)
        rows snap to the nearest populated row instead of blending
        toward zero.
        """
        energies = np.atleast_1d(np.asarray(energies_mev, dtype=np.float64))
        if np.any(energies <= 0):
            raise LookupError_("LUT energy query must be positive")
        grid = self.energies_mev
        clipped = np.clip(energies, grid[0], grid[-1])
        hi = np.clip(np.searchsorted(grid, clipped), 1, len(grid) - 1)
        lo = hi - 1
        weight = (np.log(clipped) - np.log(grid[lo])) / (
            np.log(grid[hi]) - np.log(grid[lo])
        )
        populated = self._populated_rows()
        bad = ~(populated[lo] & populated[hi])
        if np.any(bad):
            candidates = np.flatnonzero(populated)
            if len(candidates) == 0:
                raise LookupError_(
                    f"LUT for {self.particle_name!r} has no populated "
                    "energy rows to sample from"
                )
            # prefer the populated bracket endpoint; when both ends are
            # empty, snap to the nearest populated row
            snap = np.where(populated[lo], lo, hi)
            both_empty = bad & ~populated[lo] & ~populated[hi]
            if np.any(both_empty):
                position = lo[both_empty] + weight[both_empty]
                snap[both_empty] = candidates[
                    np.argmin(
                        np.abs(
                            candidates[np.newaxis, :]
                            - position[:, np.newaxis]
                        ),
                        axis=1,
                    )
                ]
            lo = np.where(bad, snap, lo)
            hi = np.where(bad, snap, hi)
            weight = np.where(bad, 0.0, weight)
            _log.warning(
                "empty LUT rows skipped in sampling %s",
                kv(
                    particle=self.particle_name,
                    queries=int(np.count_nonzero(bad)),
                    total=len(energies),
                ),
            )
        rows = (
            (1.0 - weight)[:, np.newaxis] * self.quantiles[lo]
            + weight[:, np.newaxis] * self.quantiles[hi]
        )
        u = rng.uniform(0.0, 1.0, size=len(energies))
        positions = u * (rows.shape[1] - 1)
        lower = np.floor(positions).astype(int)
        upper = np.minimum(lower + 1, rows.shape[1] - 1)
        frac = positions - lower
        idx = np.arange(len(energies))
        return rows[idx, lower] * (1.0 - frac) + rows[idx, upper] * frac

    def _check_energy(self, energy_mev: float):
        if energy_mev <= 0:
            raise LookupError_("LUT energy query must be positive")

    # -- normalized series (paper Fig. 4) --------------------------------

    def normalized_yield_series(self):
        """``(energies, mean_pairs / max(mean_pairs))`` -- the Fig. 4 curve."""
        peak = float(np.max(self.mean_pairs))
        if peak <= 0:
            raise LookupError_("LUT has no non-zero yields to normalize")
        return self.energies_mev.copy(), self.mean_pairs / peak

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-python representation for :mod:`repro.io.lutio`."""
        return {
            "kind": "electron_yield_lut",
            "particle_name": self.particle_name,
            "energies_mev": self.energies_mev.tolist(),
            "hit_fraction": self.hit_fraction.tolist(),
            "mean_pairs": self.mean_pairs.tolist(),
            "quantiles": self.quantiles.tolist(),
            "trials_per_energy": self.trials_per_energy,
            "degraded": bool(self.degraded),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ElectronYieldLUT":
        """Inverse of :meth:`to_dict`."""
        if payload.get("kind") != "electron_yield_lut":
            raise ConfigError("payload is not an electron-yield LUT")
        return cls(
            particle_name=payload["particle_name"],
            energies_mev=np.array(payload["energies_mev"]),
            hit_fraction=np.array(payload["hit_fraction"]),
            mean_pairs=np.array(payload["mean_pairs"]),
            quantiles=np.array(payload["quantiles"]),
            trials_per_energy=int(payload.get("trials_per_energy", 0)),
            degraded=bool(payload.get("degraded", False)),
        )


def default_energy_grid(particle_name: str, n_points: int = 13) -> np.ndarray:
    """The paper's Fig. 4 energy range: 0.1 - 100 MeV, log-spaced."""
    if n_points < 2:
        raise ConfigError("need at least two grid points")
    get_particle(particle_name)  # validate the name
    return np.logspace(-1, 2, n_points)
