"""System-level reliability: ECC and interleaving on top of the SER flow."""

from .ecc import EccScheme, InterleavingAnalysis, word_failure_rates

__all__ = ["EccScheme", "InterleavingAnalysis", "word_failure_rates"]
