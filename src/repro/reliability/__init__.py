"""System-level reliability: ECC and interleaving on top of the SER flow."""

from .ecc import (
    DEC_TED,
    NO_ECC,
    SEC_DED,
    EccScheme,
    InterleavingAnalysis,
    same_word_pair_fraction,
    word_failure_rates,
)

__all__ = [
    "DEC_TED",
    "NO_ECC",
    "SEC_DED",
    "EccScheme",
    "InterleavingAnalysis",
    "same_word_pair_fraction",
    "word_failure_rates",
]
