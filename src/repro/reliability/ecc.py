"""ECC and bit-interleaving analysis of the array's upset statistics.

The architectural consequence of the paper's MBU result: a
single-error-correcting code protects a word against SEUs, but an MBU
whose members share a logical word defeats it.  Physical bit
interleaving (word bits placed every ``D`` columns) separates the
members of a physically-compact MBU into different words.

Inputs come straight from the flow's measurables:

* SEU / MBU rates (paper eqs. 5-6 folded into FIT),
* the failing-pair offset statistics of
  :mod:`repro.ser.clusters` (which pairs share a row and how far apart
  their columns are).

Word mapping convention: with interleaving distance ``D``, physical
column ``c`` of a row belongs to word ``c mod D`` (the standard
bit-slice layout); two cells share a word iff they share a row and
``d_col % D == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError
from ..ser.clusters import PairOffsetStatistics
from ..ser.fit import FitResult


@dataclass(frozen=True)
class EccScheme:
    """An error-correcting code's per-word correction capability."""

    name: str
    correctable_bits: int

    def __post_init__(self):
        if self.correctable_bits < 0:
            raise ConfigError("correctable bit count cannot be negative")


#: Common schemes.
NO_ECC = EccScheme("none", 0)
SEC_DED = EccScheme("SEC-DED", 1)
DEC_TED = EccScheme("DEC-TED", 2)


@dataclass(frozen=True)
class InterleavingAnalysis:
    """Failure-rate decomposition for one (ECC, interleave) choice.

    Rates are in the same unit as the input FIT result.

    Attributes
    ----------
    scheme / interleave_distance:
        The architecture under analysis.
    raw_seu_rate / raw_mbu_rate:
        Physical upset rates from the flow.
    uncorrectable_rate:
        Expected rate of upset events the ECC cannot correct.
    same_word_pair_fraction:
        Fraction of failing pairs whose members share a logical word.
    """

    scheme: EccScheme
    interleave_distance: int
    raw_seu_rate: float
    raw_mbu_rate: float
    uncorrectable_rate: float
    same_word_pair_fraction: float

    @property
    def correction_gain(self) -> float:
        """(SEU+MBU) / uncorrectable -- how much the ECC buys."""
        total = self.raw_seu_rate + self.raw_mbu_rate
        if self.uncorrectable_rate <= 0:
            return float("inf") if total > 0 else 1.0
        return total / self.uncorrectable_rate


def same_word_pair_fraction(
    offsets: PairOffsetStatistics, interleave_distance: int
) -> float:
    """Fraction of failing pairs that share a logical word.

    Same word requires the same row and a column offset that is a
    multiple of the interleave distance (column offset 0 means the same
    physical cell -- excluded by construction of the pair statistics).
    """
    if interleave_distance < 1:
        raise ConfigError("interleave distance must be >= 1")
    total = offsets.total_pair_rate
    if total <= 0:
        return 0.0
    same_word = sum(
        rate
        for (d_row, d_col), rate in offsets.expected_pairs.items()
        if d_row == 0 and d_col % interleave_distance == 0
    )
    return float(same_word / total)


def word_failure_rates(
    fit: FitResult,
    offsets: PairOffsetStatistics,
    scheme: EccScheme = SEC_DED,
    interleave_distance: int = 4,
) -> InterleavingAnalysis:
    """Estimate the uncorrectable-upset rate for an architecture.

    Model (first order, rare-event regime):

    * with no ECC every upset event is a failure;
    * a ``t``-correcting code is defeated only by events placing more
      than ``t`` failing bits in one word.  For t >= 1 the dominant
      surviving term is an MBU pair sharing a word, so

          uncorrectable ~ MBU_rate x P(pair shares a word)

      (events with >= 3 same-word failures are higher order);
    * a ``t >= 2`` code additionally needs triple same-word clusters --
      we bound its uncorrectable rate by the same-word fraction squared
      (conservative upper estimate of the unresolved tail).
    """
    fraction = same_word_pair_fraction(offsets, interleave_distance)
    if scheme.correctable_bits == 0:
        uncorrectable = fit.fit_seu + fit.fit_mbu
    elif scheme.correctable_bits == 1:
        uncorrectable = fit.fit_mbu * fraction
    else:
        uncorrectable = fit.fit_mbu * fraction * fraction
    return InterleavingAnalysis(
        scheme=scheme,
        interleave_distance=int(interleave_distance),
        raw_seu_rate=fit.fit_seu,
        raw_mbu_rate=fit.fit_mbu,
        uncorrectable_rate=float(uncorrectable),
        same_word_pair_fraction=fraction,
    )
