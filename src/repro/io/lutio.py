"""Persistence of LUT artifacts and results.

The paper's flow builds its LUTs "only once"; this module makes that
literal: electron-yield LUTs and POF tables serialize to JSON and can
be cached on disk keyed by a configuration hash, so repeated benchmark
runs skip the expensive build steps.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Optional, Union

from ..errors import SerializationError
from ..obs import get_logger, get_registry, kv
from ..sram.pof_lut import PofTable
from ..transport.lut import ElectronYieldLUT

_log = get_logger(__name__)

def _load_ser_sweep(payload):
    from ..ser.results import SerSweep

    return SerSweep.from_dict(payload)


_KIND_LOADERS = {
    "electron_yield_lut": ElectronYieldLUT.from_dict,
    "pof_table": PofTable.from_dict,
    "ser_sweep": _load_ser_sweep,
}

def _atomic_write(path: Path, writer, mode: str):
    """Write via a unique same-directory temp file + ``os.replace``.

    The temp name is unique (``mkstemp``), so concurrent writers never
    clobber each other's half-written files; the payload is fsynced
    before the rename, so an interrupted write can never leave a
    truncated artifact under the final name.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def save_artifact(artifact, path: Union[str, Path]):
    """Atomically write an artifact with a ``to_dict`` method to disk.

    Format follows the suffix: ``.json`` (default, human-readable) or
    ``.npz`` (compressed; the dict payload is embedded as a JSON blob
    -- compact for the large POF grids).  The write goes through a
    unique temp file + ``os.replace`` so an interrupted run can never
    leave a corrupt artifact at the target path.
    """
    path = Path(path)
    if not hasattr(artifact, "to_dict"):
        raise SerializationError(
            f"object of type {type(artifact).__name__} is not serializable"
        )
    payload = artifact.to_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".npz":

        import numpy as np

        blob = np.frombuffer(
            json.dumps(payload).encode("utf-8"), dtype=np.uint8
        )
        _atomic_write(
            path, lambda handle: np.savez_compressed(handle, payload=blob), "wb"
        )
        return
    _atomic_write(path, lambda handle: json.dump(payload, handle), "w")

def load_artifact(path: Union[str, Path]):
    """Load a previously saved artifact, dispatching on its ``kind``."""
    path = Path(path)
    try:
        if path.suffix == ".npz":
            import numpy as np

            with np.load(path) as archive:
                payload = json.loads(
                    archive["payload"].tobytes().decode("utf-8")
                )
        else:
            with open(path) as handle:
                payload = json.load(handle)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        raise SerializationError(f"cannot load artifact {path}: {exc}") from exc
    kind = payload.get("kind")
    loader = _KIND_LOADERS.get(kind)
    if loader is None:
        raise SerializationError(f"unknown artifact kind {kind!r} in {path}")
    return loader(payload)

def config_hash(*objects) -> str:
    """Deterministic short hash of configuration objects.

    Dataclasses are converted via ``asdict``; everything else must be
    JSON-encodable.  Used as a cache key so stale artifacts are never
    reused after a configuration change.
    """

    def encode(obj):
        if is_dataclass(obj) and not isinstance(obj, type):
            return {type(obj).__name__: _jsonable(asdict(obj))}
        return _jsonable(obj)

    blob = json.dumps([encode(o) for o in objects], sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]

def _jsonable(obj):
    """Recursively coerce numpy scalars/arrays into JSON-safe values."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    return obj

#: Default single-flight lock parameters (see
#: :meth:`ArtifactCache.get_or_build`): how often a waiter re-polls a
#: held lock, and after how long an untouched lock is presumed dead
#: and taken over (a crashed builder cannot release its lock).
DEFAULT_LOCK_POLL_S = 0.05
DEFAULT_LOCK_STALE_S = 600.0


class BuildLock:
    """Cross-process single-flight lock for one cache key.

    A lock *file* created with ``O_CREAT | O_EXCL`` — the one
    primitive that is atomic on every filesystem — marks a build in
    flight.  Exactly one process wins creation and runs the builder;
    everybody else polls, re-checking the cache each round so they
    pick up the winner's artifact instead of rebuilding.  A lock whose
    file has not been refreshed for ``stale_s`` is presumed abandoned
    (builder crashed before the ``finally``) and taken over.
    """

    def __init__(
        self,
        path: Path,
        poll_s: float = DEFAULT_LOCK_POLL_S,
        stale_s: float = DEFAULT_LOCK_STALE_S,
    ):
        self.path = Path(path)
        self.poll_s = float(poll_s)
        self.stale_s = float(stale_s)
        self._fd: Optional[int] = None

    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt."""
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        os.write(fd, f"{os.getpid()} {time.time()}\n".encode("utf-8"))
        self._fd = fd
        return True

    def holder_stale(self) -> bool:
        """True when the held lock looks abandoned (mtime too old)."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False  # released between the check and the stat
        return age > self.stale_s

    def break_stale(self) -> bool:
        """Remove an abandoned lock so the next attempt can win it."""
        try:
            os.unlink(self.path)
            return True
        except OSError:
            return False  # somebody else broke or released it first

    def release(self):
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
            try:
                os.unlink(self.path)
            except OSError:
                pass  # a (wrongly) aggressive takeover beat us to it


class ArtifactCache:
    """A tiny content-addressed artifact cache directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        lock_poll_s: float = DEFAULT_LOCK_POLL_S,
        lock_stale_s: float = DEFAULT_LOCK_STALE_S,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.lock_poll_s = float(lock_poll_s)
        self.lock_stale_s = float(lock_stale_s)

    def path_for(self, name: str, *config_objects) -> Path:
        """Cache file path for a named artifact under a config."""
        key = config_hash(*config_objects)
        return self.directory / f"{name}-{key}.json"

    def lock_path_for(self, name: str, *config_objects) -> Path:
        """Single-flight build-lock path for a named artifact."""
        key = config_hash(*config_objects)
        return self.directory / f"{name}-{key}.lock"

    def journal_path(self, name: str, *config_objects) -> Path:
        """Shard-journal checkpoint path for a named campaign.

        Lives next to the artifact it checkpoints, keyed by the same
        sha256 configuration hash -- so a journal can only ever resume
        the campaign whose configuration wrote it (the
        :class:`~repro.parallel.ShardJournal` additionally embeds the
        key in every record).
        """
        key = config_hash(*config_objects)
        return self.directory / f"journal-{name}-{key}.jsonl"

    def journal_key(self, *config_objects) -> str:
        """The sha256 campaign key matching :meth:`journal_path`."""
        return config_hash(*config_objects)

    def _try_load(self, name: str, path: Path):
        """One cache probe: ``(hit, artifact)``; corrupt entries discarded."""
        metrics = get_registry()
        if not path.exists():
            return False, None
        try:
            artifact = load_artifact(path)
        except SerializationError as exc:
            metrics.counter("lut_cache.invalid").inc()
            _log.warning(
                "discarding corrupt cache entry %s",
                kv(name=name, path=path, error=exc),
            )
            path.unlink(missing_ok=True)
            return False, None
        metrics.counter("lut_cache.hits").inc()
        _log.debug("cache hit %s", kv(name=name, path=path))
        return True, artifact

    def get_or_build(self, name: str, builder, *config_objects):
        """Load the cached artifact or build + store it — once per key.

        ``builder`` is a zero-argument callable producing the artifact.
        Concurrent misses on the same key (two processes, or two
        service requests) are **single-flighted** through a lock file
        next to the artifact: one process builds while the others poll,
        re-checking the cache each round so they return the winner's
        artifact instead of duplicating the build (and racing on the
        shared journal path).  A lock left behind by a crashed builder
        is taken over after ``lock_stale_s``.

        Artifacts flagged ``degraded`` (partial statistics after worker
        loss) are returned but **not** cached, so the next run rebuilds
        at full statistics (waiters on a degraded build find no
        artifact when the lock clears and run the builder themselves).
        Cache traffic is counted in the metrics registry
        (``lut_cache.hits`` / ``misses`` / ``writes`` / ``invalid`` /
        ``lock_waits`` / ``lock_takeovers``).
        """
        metrics = get_registry()
        path = self.path_for(name, *config_objects)
        hit, artifact = self._try_load(name, path)
        if hit:
            return artifact
        lock = BuildLock(
            self.lock_path_for(name, *config_objects),
            poll_s=self.lock_poll_s,
            stale_s=self.lock_stale_s,
        )
        waited = False
        while not lock.try_acquire():
            if not waited:
                waited = True
                metrics.counter("lut_cache.lock_waits").inc()
                _log.debug(
                    "waiting on concurrent build %s",
                    kv(name=name, lock=lock.path),
                )
            if lock.holder_stale() and lock.break_stale():
                metrics.counter("lut_cache.lock_takeovers").inc()
                _log.warning(
                    "took over stale build lock %s",
                    kv(name=name, lock=lock.path, stale_s=self.lock_stale_s),
                )
                continue
            time.sleep(self.lock_poll_s)
            hit, artifact = self._try_load(name, path)
            if hit:
                return artifact
        try:
            # we hold the lock; the winner of a wait must still re-check
            # (the previous holder may have published while we raced the
            # release/acquire edge).
            hit, artifact = self._try_load(name, path)
            if hit:
                return artifact
            metrics.counter("lut_cache.misses").inc()
            _log.debug("cache miss %s", kv(name=name, path=path))
            artifact = builder()
            if getattr(artifact, "degraded", False):
                metrics.counter("lut_cache.degraded_skips").inc()
                _log.warning(
                    "not caching degraded artifact %s", kv(name=name, path=path)
                )
                return artifact
            save_artifact(artifact, path)
            metrics.counter("lut_cache.writes").inc()
            _log.debug("cache write %s", kv(name=name, path=path))
            return artifact
        finally:
            lock.release()
