"""Artifact persistence: LUT serialization and the build cache."""

from .lutio import ArtifactCache, config_hash, load_artifact, save_artifact

__all__ = ["ArtifactCache", "config_hash", "load_artifact", "save_artifact"]
