"""Artifact persistence: LUT serialization and the build cache."""

from .lutio import (
    ArtifactCache,
    BuildLock,
    config_hash,
    load_artifact,
    save_artifact,
)

__all__ = [
    "ArtifactCache",
    "BuildLock",
    "config_hash",
    "load_artifact",
    "save_artifact",
]
