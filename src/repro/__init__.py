"""repro -- radiation-induced soft-error analysis of SOI FinFET SRAMs.

A faithful, fully open reimplementation of the cross-layer SER flow of
Kiamehr, Osiecki, Tahoori and Nassif, "Radiation-Induced Soft Error
Analysis of SRAMs in SOI FinFET Technology: A Device to Circuit
Approach" (DAC 2014), including every substrate the flow needs:

* a Monte Carlo particle-transport engine (Geant4 substitute) over the
  3-D SOI fin stack (:mod:`repro.transport`, :mod:`repro.physics`,
  :mod:`repro.geometry`),
* a nonlinear MNA circuit simulator with a calibrated 14 nm FinFET
  compact model (:mod:`repro.circuit`, :mod:`repro.devices`),
* 6T SRAM cell characterization into POF LUTs with process-variation
  Monte Carlo (:mod:`repro.sram`),
* array-layout 3-D Monte Carlo, SEU/MBU decomposition and FIT-rate
  integration (:mod:`repro.layout`, :mod:`repro.ser`),
* the orchestrating cross-layer flow (:mod:`repro.core`) and figure
  reproduction helpers (:mod:`repro.analysis`),
* an observability substrate -- metrics registry, tracing spans,
  structured logging and per-run manifests (:mod:`repro.obs`),
  disabled (zero-cost) by default.

Quick start::

    from repro import FlowConfig, SerFlow

    flow = SerFlow(FlowConfig(mc_particles_per_bin=20000))
    result = flow.fit("alpha", vdd_v=0.8)
    print(result.fit_total, result.mbu_to_seu_ratio)
"""

from . import obs
from .core import DEFAULT_ENERGY_RANGES, FlowConfig, SerFlow
from .devices import FinFETModel, TechnologyCard, VariationModel, default_tech
from .errors import (
    CharacterizationError,
    CircuitError,
    ConfigError,
    ConvergenceError,
    GeometryError,
    PhysicsError,
    ReproError,
    SerializationError,
)
from .geometry import FinGeometry, SoiFinWorld
from .layout import CellLayout, SramArrayLayout
from .physics import (
    ALPHA,
    PROTON,
    AlphaEmissionSpectrum,
    SeaLevelProtonSpectrum,
    get_particle,
)
from .sram import (
    CharacterizationConfig,
    PofTable,
    SramCellDesign,
    StrikeScenario,
    characterize_cell,
)
from .ser import (
    ArrayMcConfig,
    ArrayPofResult,
    ArraySerSimulator,
    FitResult,
    SerSweep,
    integrate_fit,
)
from .transport import ElectronYieldLUT, TransportConfig, TransportEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # flow
    "SerFlow",
    "FlowConfig",
    "DEFAULT_ENERGY_RANGES",
    # devices / technology
    "FinFETModel",
    "TechnologyCard",
    "default_tech",
    "VariationModel",
    # physics / transport
    "ALPHA",
    "PROTON",
    "get_particle",
    "SeaLevelProtonSpectrum",
    "AlphaEmissionSpectrum",
    "TransportEngine",
    "TransportConfig",
    "ElectronYieldLUT",
    "FinGeometry",
    "SoiFinWorld",
    # cell level
    "SramCellDesign",
    "CharacterizationConfig",
    "characterize_cell",
    "PofTable",
    "StrikeScenario",
    # array level
    "CellLayout",
    "SramArrayLayout",
    "ArraySerSimulator",
    "ArrayMcConfig",
    "ArrayPofResult",
    "FitResult",
    "SerSweep",
    "integrate_fit",
    # errors
    "ReproError",
    "ConfigError",
    "GeometryError",
    "PhysicsError",
    "CircuitError",
    "ConvergenceError",
    "CharacterizationError",
    "SerializationError",
]
