"""Pluggable array-compute backends for the hot kernels.

Selection follows the documented execution-plane precedence contract
(the one :func:`repro.parallel.pool.warm_pool_enabled` /
:func:`repro.parallel.shm.shm_enabled` established): the
``REPRO_BACKEND`` environment variable beats an explicit override
(``--backend``, a config field) beats the process default set with
:func:`set_backend_default`.  The backend is a pure execution knob --
the numpy path is bit-identical to the historical inline code, so it
must never perturb result-cache keys
(:meth:`repro.service.protocol.QuerySpec.canonical_key` stays
backend-free).

Two resolution layers:

* :func:`backend_name` -- the *requested* name after precedence
  (validates against :data:`BACKENDS`, raises
  :class:`~repro.errors.ConfigError` on unknown names).
* :func:`resolve_backend` / :func:`get_backend` -- the *effective*
  name/instance after availability: requesting numba or cupy on a
  host without them logs a warning, bumps ``backend.fallbacks`` and
  gracefully degrades to numpy (same results, just slower).

Worker processes receive the parent's *resolved* name (e.g. inside a
pickled :class:`~repro.ser.mc.ArraySerSimulator`), so one campaign
never mixes backends across its shards.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..errors import ConfigError
from ..obs import get_logger, get_registry, kv
from .base import ArrayBackend
from .cupy_backend import CupyBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "CupyBackend",
    "ENV_BACKEND",
    "NumbaBackend",
    "NumpyBackend",
    "backend_name",
    "get_backend",
    "get_backend_instance",
    "resolve_backend",
    "set_backend_default",
]

_log = get_logger(__name__)

#: Selection knob: names one of :data:`BACKENDS` process-wide; beats
#: every explicit override (the operational kill switch back to numpy
#: is ``REPRO_BACKEND=numpy``).
ENV_BACKEND = "REPRO_BACKEND"

#: Registered backend names, in fallback-documentation order.
BACKENDS = ("numpy", "numba", "cupy")

_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}

_DEFAULT_BACKEND = "numpy"

#: One instance per resolved name -- backends may hold caches (cupy's
#: upload table, numba's compiled kernels) that must be shared by
#: every kernel of the process.
_INSTANCES: Dict[str, ArrayBackend] = {}


def _validate(name: str) -> str:
    name = str(name).lower()
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown array backend {name!r}; choose from {BACKENDS}"
        )
    return name


def backend_name(override: Optional[str] = None) -> str:
    """Requested backend after precedence (env > override > default).

    ``REPRO_BACKEND`` beats an explicit ``override`` (CLI flag, config
    field) beats the module default set by :func:`set_backend_default`
    -- the same contract as the warm-pool and shm switches.
    """
    env = os.environ.get(ENV_BACKEND)
    if env:
        return _validate(env)
    if override is not None:
        return _validate(override)
    return _DEFAULT_BACKEND


def set_backend_default(name: str) -> None:
    """Set the process-wide default used when no override is given."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = _validate(name)


def resolve_backend(override: Optional[str] = None) -> str:
    """Effective backend name: requested, degraded to availability.

    A requested accelerated backend whose dependencies are missing
    falls back to numpy (counted in ``backend.fallbacks``) instead of
    failing the run -- results are identical, only slower.
    """
    requested = backend_name(override)
    if _CLASSES[requested].available():
        return requested
    metrics = get_registry()
    if metrics.enabled:
        metrics.counter("backend.fallbacks").inc()
    _log.warning(
        "array backend unavailable, falling back to numpy %s",
        kv(requested=requested),
    )
    return "numpy"


def get_backend_instance(name: str) -> ArrayBackend:
    """The shared instance of one *resolved* backend name."""
    name = _validate(name)
    instance = _INSTANCES.get(name)
    if instance is None:
        cls = _CLASSES[name]
        if not cls.available():
            # a stale resolved name (e.g. unpickled on a host without
            # the dependency) degrades the same way resolution does
            return get_backend_instance(resolve_backend("numpy"))
        instance = _INSTANCES[name] = cls()
    return instance


def get_backend(override: Optional[str] = None) -> ArrayBackend:
    """Resolve and instantiate in one step (env > override > default)."""
    return get_backend_instance(resolve_backend(override))
