"""The array-compute backend interface.

The flow's two hot kernels -- the sparse ``(event, cell)`` strike
accumulator of :meth:`repro.ser.mc.ArraySerSimulator._process_batch`
and the tabulated bilinear lookup of
:meth:`repro.sram.ivtab.IVTables.currents_stacked` -- are pure array
code.  :class:`ArrayBackend` names exactly the primitives they need,
so the kernels can run on numpy (the bit-identical default), numba
(fused segmented-reduction kernels) or cupy (device-resident arrays)
without touching the physics.

Contract
--------
* The **numpy** implementation must be *bit-identical* to the
  historical inline code: every primitive delegates to the very numpy
  ufunc call the kernels used to make, in the same order.
* Accelerated implementations carry a tolerance contract instead
  (max ``|dPOF| <= 1e-3`` vs numpy, enforced by
  ``benchmarks/perf/bench_backend.py --check``); their per-segment
  reductions still accumulate left-to-right so in practice they track
  numpy far inside that budget.
* All primitives accept and return *backend-native* arrays;
  :meth:`ArrayBackend.asarray` / :meth:`ArrayBackend.to_numpy` are the
  explicit host/device boundary, and :meth:`ArrayBackend.upload` is
  the fingerprint-cached path for large static tables (I-V surfaces,
  POF grids) that should cross that boundary once per sweep, not once
  per batch.

Segmented reductions follow the ``np.ufunc.reduceat`` convention:
``starts`` is an int array of segment start offsets (``starts[0] ==
0``); segment ``g`` spans ``values[starts[g]:starts[g + 1]]`` (the
last one runs to the end).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Abstract array-ops backend (see module docstring).

    Subclasses set :attr:`name` and implement every primitive;
    :meth:`available` gates optional dependencies so selection can
    fall back to numpy gracefully.
    """

    #: Registry name ("numpy", "numba", "cupy").
    name: str = "abstract"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend's dependencies import on this host."""
        raise NotImplementedError

    # -- host/device boundary ----------------------------------------------

    def asarray(self, array, dtype=None):
        """Backend-native view/copy of a host array."""
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Host ndarray of a backend-native array (no-op on host)."""
        raise NotImplementedError

    def zeros(self, shape, dtype=np.float64):
        """Backend-native zero-filled array."""
        raise NotImplementedError

    def upload(self, array: np.ndarray):
        """Device-resident copy of a large static host array.

        Keyed on the :func:`repro.parallel.shm.array_fingerprint`
        sha256 so a sweep uploads each I-V table / POF grid once;
        host backends return the array unchanged.
        """
        raise NotImplementedError

    def synchronize(self) -> None:
        """Barrier for async device work (no-op on host backends)."""

    # -- sparse strike accumulator primitives -------------------------------

    def unique_inverse(self, keys) -> Tuple[object, object]:
        """``np.unique(keys, return_inverse=True)`` semantics."""
        raise NotImplementedError

    def scatter_add(self, target, indices, values) -> None:
        """In-place ``np.add.at(target, indices, values)`` semantics.

        ``indices`` may be a tuple for multi-axis scatters.  Repeated
        indices accumulate; the numpy implementation applies them
        sequentially in element order (the bit-identity anchor).
        """
        raise NotImplementedError

    def segment_sum(self, values, starts):
        """``np.add.reduceat(values, starts)`` semantics."""
        raise NotImplementedError

    def segment_prod(self, values, starts):
        """``np.multiply.reduceat(values, starts)`` semantics."""
        raise NotImplementedError

    def segment_combine(
        self, pof, starts, one_minus_eps: float
    ) -> Tuple[object, object, object]:
        """Per-segment (total, SEU, MBU) failure probabilities.

        The segmented form of eqs. 4-6 (:func:`repro.ser.pof.combine`)
        over each event's touched cells::

            total = 1 - prod(1 - p)
            seu   = prod(1 - clip(p)) * sum(clip(p) / (1 - clip(p)))
            mbu   = max(total - seu, 0)

        with ``clip(p) = min(p, one_minus_eps)`` guarding the ratio.
        """
        raise NotImplementedError

    def segment_multiplicity(self, pof, starts, max_k: int):
        """Summed Poisson-binomial PMF over variable-size segments.

        Returns a length ``max_k + 1`` host-convertible vector: the
        sum over segments of each segment's failure-count PMF, the top
        bin absorbing overflow (``k >= max_k``).  Matches
        :meth:`repro.ser.mc.ArraySerSimulator._sparse_multiplicity`.
        """
        raise NotImplementedError

    # -- bilinear table lookup ---------------------------------------------

    def bilinear_gather(self, flat, base, stride: int, fw, fu):
        """Four flat gathers + bilinear blend (the I-V table lookup).

        ``flat`` is the raveled table (pass it through :meth:`upload`),
        ``base`` the flat index of each query's lower-left corner,
        ``stride`` the row pitch, and ``fw`` / ``fu`` the fractional
        offsets along the fast and slow axes::

            z0 = v[base]          + (v[base + 1]          - v[base])          * fw
            z1 = v[base + stride] + (v[base + stride + 1] - v[base + stride]) * fw
            out = z0 + (z1 - z0) * fu
        """
        raise NotImplementedError

    # -- conveniences -------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
