"""Numba backend: fused, JIT-compiled segmented-reduction kernels.

The numpy path evaluates the segmented eqs. 4-6 as four separate
``reduceat`` passes plus intermediate temporaries, and runs the
Poisson-binomial DP rank-by-rank with fancy-indexed gathers per rank.
This backend fuses each of those into one compiled pass per segment,
parallelized over segments with ``prange`` -- segments are
independent, so the parallel schedule never reorders any per-segment
accumulation (each segment still reduces strictly left-to-right).

Import is gated: the module loads without numba installed and
:meth:`NumbaBackend.available` reports ``False``, letting
:func:`repro.backend.get_backend` fall back to numpy.  Kernels compile
lazily on first use (``cache=False`` -- no ``__pycache__`` writes from
workers).

Accuracy: per-segment reductions accumulate in the same left-to-right
order as ``reduceat``, so results match numpy bit-for-bit in practice;
the *contract* is the tolerance one (max ``|dPOF| <= 1e-3``, enforced
by ``bench_backend.py --check`` and ``tests/test_backend.py`` when
numba is installed).
"""

from __future__ import annotations

import numpy as np

from .numpy_backend import NumpyBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

__all__ = ["NumbaBackend"]

#: Lazily compiled kernel table (filled by :func:`_kernels`).
_KERNELS = None


def _kernels():
    """Compile (once) and return the fused segment kernels."""
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS
    njit = _numba.njit
    prange = _numba.prange

    @njit(parallel=True, cache=False)
    def segment_combine(pof, starts, ends, one_minus_eps, total, seu, mbu):
        for g in prange(len(starts)):
            prod_miss = 1.0
            prod_surv = 1.0
            ratio_sum = 0.0
            for i in range(starts[g], ends[g]):
                p = pof[i]
                prod_miss *= 1.0 - p
                c = p if p < one_minus_eps else one_minus_eps
                sv = 1.0 - c
                prod_surv *= sv
                ratio_sum += c / sv
            t = 1.0 - prod_miss
            s = prod_surv * ratio_sum
            m = t - s
            total[g] = t
            seu[g] = s
            mbu[g] = m if m > 0.0 else 0.0

    @njit(parallel=True, cache=False)
    def segment_multiplicity(pof, starts, ends, out):
        # out has shape (n_groups, max_k + 1); each segment runs the
        # full DP locally instead of rank-by-rank across segments.
        max_k = out.shape[1] - 1
        for g in prange(len(starts)):
            out[g, 0] = 1.0
            for i in range(starts[g], ends[g]):
                p = pof[i]
                top = out[g, max_k]
                for k in range(max_k, 0, -1):
                    out[g, k] = out[g, k] * (1.0 - p) + out[g, k - 1] * p
                # the top bin absorbs overflow (k >= max_k stays put)
                out[g, max_k] += top * p
                out[g, 0] *= 1.0 - p

    @njit(parallel=True, cache=False)
    def segment_sum(values, starts, ends, out):
        for g in prange(len(starts)):
            acc = 0.0
            for i in range(starts[g], ends[g]):
                acc += values[i]
            out[g] = acc

    @njit(parallel=True, cache=False)
    def segment_prod(values, starts, ends, out):
        for g in prange(len(starts)):
            acc = 1.0
            for i in range(starts[g], ends[g]):
                acc *= values[i]
            out[g] = acc

    @njit(cache=False)
    def scatter_add2(target, rows, cols, values):
        # sequential by construction: repeated (row, col) pairs must
        # accumulate in element order, exactly like np.add.at
        for i in range(len(values)):
            target[rows[i], cols[i]] += values[i]

    @njit(parallel=True, cache=False)
    def bilinear_gather(flat, base, stride, fw, fu, out):
        for i in prange(base.size):
            b = base.flat[i]
            w = fw.flat[i]
            u = fu.flat[i]
            v00 = flat[b]
            v01 = flat[b + 1]
            v10 = flat[b + stride]
            v11 = flat[b + stride + 1]
            z0 = v00 + (v01 - v00) * w
            z1 = v10 + (v11 - v10) * w
            out.flat[i] = z0 + (z1 - z0) * u

    _KERNELS = {
        "segment_combine": segment_combine,
        "segment_multiplicity": segment_multiplicity,
        "segment_sum": segment_sum,
        "segment_prod": segment_prod,
        "scatter_add2": scatter_add2,
        "bilinear_gather": bilinear_gather,
    }
    return _KERNELS


def _ends(starts: np.ndarray, n: int) -> np.ndarray:
    return np.append(starts[1:], n).astype(np.int64)


class NumbaBackend(NumpyBackend):
    """JIT-fused host backend (inherits numpy's boundary primitives)."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return _numba is not None

    def scatter_add(self, target, indices, values) -> None:
        if (
            isinstance(indices, tuple)
            and len(indices) == 2
            and getattr(target, "ndim", 0) == 2
        ):
            rows = np.ascontiguousarray(indices[0], dtype=np.int64)
            cols = np.ascontiguousarray(indices[1], dtype=np.int64)
            vals = np.ascontiguousarray(values, dtype=np.float64)
            _kernels()["scatter_add2"](target, rows, cols, vals)
            return
        np.add.at(target, indices, values)

    def segment_sum(self, values, starts):
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        out = np.empty(len(starts), dtype=np.float64)
        _kernels()["segment_sum"](
            np.ascontiguousarray(values, dtype=np.float64),
            starts,
            _ends(starts, len(values)),
            out,
        )
        return out

    def segment_prod(self, values, starts):
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        out = np.empty(len(starts), dtype=np.float64)
        _kernels()["segment_prod"](
            np.ascontiguousarray(values, dtype=np.float64),
            starts,
            _ends(starts, len(values)),
            out,
        )
        return out

    def segment_combine(self, pof, starts, one_minus_eps: float):
        pof = np.ascontiguousarray(pof, dtype=np.float64)
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        ends = _ends(starts, len(pof))
        total = np.empty(len(starts), dtype=np.float64)
        seu = np.empty(len(starts), dtype=np.float64)
        mbu = np.empty(len(starts), dtype=np.float64)
        _kernels()["segment_combine"](
            pof, starts, ends, float(one_minus_eps), total, seu, mbu
        )
        return total, seu, mbu

    def segment_multiplicity(self, pof, starts, max_k: int) -> np.ndarray:
        pof = np.ascontiguousarray(pof, dtype=np.float64)
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        out = np.zeros((len(starts), max_k + 1), dtype=np.float64)
        _kernels()["segment_multiplicity"](
            pof, starts, _ends(starts, len(pof)), out
        )
        return out.sum(axis=0)

    def bilinear_gather(self, flat, base, stride: int, fw, fu):
        base = np.ascontiguousarray(base, dtype=np.int64)
        fw = np.ascontiguousarray(
            np.broadcast_to(fw, base.shape), dtype=np.float64
        )
        fu = np.ascontiguousarray(
            np.broadcast_to(fu, base.shape), dtype=np.float64
        )
        out = np.empty(base.shape, dtype=np.float64)
        _kernels()["bilinear_gather"](
            np.ascontiguousarray(flat, dtype=np.float64),
            base,
            int(stride),
            fw,
            fu,
            out,
        )
        return out
