"""Default numpy backend: bit-identical to the historical inline code.

Every primitive is a direct delegate to the exact numpy ufunc call the
hot kernels used to make inline, in the same order -- so routing
:meth:`repro.ser.mc.ArraySerSimulator._process_batch` and
:meth:`repro.sram.ivtab.IVTables.currents_stacked` through this class
changes no bit of any result (asserted by ``tests/test_backend.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Host numpy implementation (always available; the default)."""

    name = "numpy"

    @classmethod
    def available(cls) -> bool:
        return True

    # -- host/device boundary ----------------------------------------------

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def zeros(self, shape, dtype=np.float64):
        return np.zeros(shape, dtype=dtype)

    def upload(self, array: np.ndarray):
        return array

    # -- sparse strike accumulator primitives -------------------------------

    def unique_inverse(self, keys) -> Tuple[np.ndarray, np.ndarray]:
        return np.unique(keys, return_inverse=True)

    def scatter_add(self, target, indices, values) -> None:
        np.add.at(target, indices, values)

    def segment_sum(self, values, starts):
        return np.add.reduceat(values, starts)

    def segment_prod(self, values, starts):
        return np.multiply.reduceat(values, starts)

    def segment_combine(self, pof, starts, one_minus_eps: float):
        # verbatim the segmented eqs. 4-6 the sparse kernel inlined
        total = 1.0 - np.multiply.reduceat(1.0 - pof, starts)
        clipped = np.minimum(pof, one_minus_eps)
        survive = 1.0 - clipped
        seu = np.multiply.reduceat(survive, starts) * np.add.reduceat(
            clipped / survive, starts
        )
        mbu = np.maximum(total - seu, 0.0)
        return total, seu, mbu

    def segment_multiplicity(self, pof, starts, max_k: int) -> np.ndarray:
        """Rank-by-rank Poisson-binomial DP (the historical kernel).

        Step ``r`` folds the ``r``-th cell of every segment in at
        once, so the loop length is the largest per-segment size.
        """
        n_groups = len(starts)
        sizes = np.diff(np.append(starts, len(pof)))
        group_of = np.repeat(np.arange(n_groups), sizes)
        rank = np.arange(len(pof)) - starts[group_of]

        pmf = np.zeros((n_groups, max_k + 1), dtype=np.float64)
        pmf[:, 0] = 1.0
        for r in range(int(sizes.max())):
            selected = rank == r
            rows = group_of[selected]
            p = pof[selected][:, np.newaxis]
            block = pmf[rows]
            shifted = np.zeros_like(block)
            shifted[:, 1:] = block[:, :-1]
            # the top bin absorbs overflow (k >= max_k stays in place)
            shifted[:, -1] += block[:, -1]
            pmf[rows] = block * (1.0 - p) + shifted * p
        return pmf.sum(axis=0)

    # -- bilinear table lookup ---------------------------------------------

    def bilinear_gather(self, flat, base, stride: int, fw, fu):
        v00 = flat[base]
        v01 = flat[base + 1]
        v10 = flat[base + stride]
        v11 = flat[base + stride + 1]
        z0 = v00 + (v01 - v00) * fw
        z1 = v10 + (v11 - v10) * fw
        return z0 + (z1 - z0) * fu
