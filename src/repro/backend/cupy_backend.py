"""CuPy backend: device-resident arrays for the hot kernels.

Arrays live on the GPU between primitives; the explicit
:meth:`~repro.backend.base.ArrayBackend.to_numpy` boundary is crossed
only where the flow genuinely needs host data (the scipy-backed
:meth:`~repro.sram.pof_lut.PofTable.query`, result scalars).  Large
static tables -- the raveled I-V surfaces, POF grids -- go through
:meth:`CupyBackend.upload`, a device cache keyed on the same sha256
fingerprints the :mod:`repro.parallel.shm` payload plane computes, so
a whole (particle, energy, Vdd) sweep uploads each table once
(``backend.uploads`` / ``backend.upload_hits`` count the traffic).

Import is gated: without cupy (or without a CUDA device) the module
still loads, :meth:`CupyBackend.available` reports ``False``, and
selection falls back to numpy.  Accuracy rides the tolerance contract
(max ``|dPOF| <= 1e-3`` vs numpy, ``bench_backend.py --check``):
``segment_prod`` runs as an exp-of-segmented-log-sum scan (exact zeros
handled via a per-segment zero count), which is the one primitive that
is not a bit-level twin of the numpy reduction order.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_registry
from .base import ArrayBackend

try:  # pragma: no cover - exercised only on CUDA hosts
    import cupy as _cupy
except ImportError:  # pragma: no cover
    _cupy = None

__all__ = ["CupyBackend"]


def _device_usable() -> bool:  # pragma: no cover - needs a CUDA device
    if _cupy is None:
        return False
    try:
        _cupy.cuda.runtime.getDeviceCount()
        return True
    except Exception:
        return False


class CupyBackend(ArrayBackend):  # pragma: no cover - needs a CUDA device
    """Device implementation (available only with cupy + a GPU)."""

    name = "cupy"

    def __init__(self):
        #: fingerprint -> device array; the once-per-sweep upload cache.
        self._uploads = {}
        #: id(array) -> (fingerprint, shape, dtype) memo so repeat
        #: uploads of the same live host array skip re-hashing.
        self._fingerprints = {}

    @classmethod
    def available(cls) -> bool:
        return _device_usable()

    # -- host/device boundary ----------------------------------------------

    def asarray(self, array, dtype=None):
        return _cupy.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, _cupy.ndarray):
            return _cupy.asnumpy(array)
        return np.asarray(array)

    def zeros(self, shape, dtype=np.float64):
        return _cupy.zeros(shape, dtype=dtype)

    def upload(self, array: np.ndarray):
        from ..parallel.shm import array_fingerprint

        metrics = get_registry()
        memo = self._fingerprints.get(id(array))
        if memo is not None and memo[1:] == (array.shape, array.dtype.str):
            fingerprint = memo[0]
        else:
            fingerprint = array_fingerprint(array)
            self._fingerprints[id(array)] = (
                fingerprint,
                array.shape,
                array.dtype.str,
            )
        cached = self._uploads.get(fingerprint)
        if cached is not None:
            if metrics.enabled:
                metrics.counter("backend.upload_hits").inc()
            return cached
        device = _cupy.asarray(array)
        self._uploads[fingerprint] = device
        if metrics.enabled:
            metrics.counter("backend.uploads").inc()
            metrics.counter("backend.upload_bytes").inc(int(array.nbytes))
        return device

    def synchronize(self) -> None:
        _cupy.cuda.get_current_stream().synchronize()

    # -- sparse strike accumulator primitives -------------------------------

    def unique_inverse(self, keys):
        return _cupy.unique(keys, return_inverse=True)

    def scatter_add(self, target, indices, values) -> None:
        import cupyx

        cupyx.scatter_add(target, indices, values)

    def segment_sum(self, values, starts):
        c = _cupy.cumsum(values)
        n = len(values)
        ends = _cupy.append(starts[1:], n) - 1
        lead = _cupy.where(starts > 0, c[starts - 1], 0.0)
        return c[ends] - lead

    def segment_prod(self, values, starts):
        # exp(segmented sum of logs), exact zeros via a zero count
        zero = values == 0.0
        safe = _cupy.where(zero, 1.0, values)
        log_sum = self.segment_sum(_cupy.log(safe), starts)
        zeros_per = self.segment_sum(zero.astype(_cupy.float64), starts)
        return _cupy.where(zeros_per > 0.0, 0.0, _cupy.exp(log_sum))

    def segment_combine(self, pof, starts, one_minus_eps: float):
        total = 1.0 - self.segment_prod(1.0 - pof, starts)
        clipped = _cupy.minimum(pof, one_minus_eps)
        survive = 1.0 - clipped
        seu = self.segment_prod(survive, starts) * self.segment_sum(
            clipped / survive, starts
        )
        mbu = _cupy.maximum(total - seu, 0.0)
        return total, seu, mbu

    def segment_multiplicity(self, pof, starts, max_k: int):
        # the same rank-by-rank DP as numpy, on device arrays
        n_groups = len(starts)
        sizes = _cupy.diff(_cupy.append(starts, len(pof)))
        group_of = _cupy.repeat(_cupy.arange(n_groups), sizes.tolist())
        rank = _cupy.arange(len(pof)) - starts[group_of]

        pmf = _cupy.zeros((n_groups, max_k + 1), dtype=_cupy.float64)
        pmf[:, 0] = 1.0
        for r in range(int(sizes.max())):
            selected = rank == r
            rows = group_of[selected]
            p = pof[selected][:, _cupy.newaxis]
            block = pmf[rows]
            shifted = _cupy.zeros_like(block)
            shifted[:, 1:] = block[:, :-1]
            shifted[:, -1] += block[:, -1]
            pmf[rows] = block * (1.0 - p) + shifted * p
        return pmf.sum(axis=0)

    # -- bilinear table lookup ---------------------------------------------

    def bilinear_gather(self, flat, base, stride: int, fw, fu):
        v00 = flat[base]
        v01 = flat[base + 1]
        v10 = flat[base + stride]
        v11 = flat[base + stride + 1]
        z0 = v00 + (v01 - v00) * fw
        z1 = v10 + (v11 - v10) * fw
        return z0 + (z1 - z0) * fu
