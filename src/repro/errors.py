"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class GeometryError(ReproError):
    """Invalid geometric construction (degenerate box, zero direction...)."""


class PhysicsError(ReproError):
    """Physical model evaluated outside its domain of validity."""


class CircuitError(ReproError):
    """Netlist construction or element error."""


class ConvergenceError(CircuitError):
    """The nonlinear (Newton) or transient solver failed to converge."""

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class CharacterizationError(ReproError):
    """SRAM cell characterization produced an unusable result."""


class LookupError_(ReproError):
    """A LUT query fell outside the tabulated domain (strict mode)."""


class SerializationError(ReproError):
    """Failed to persist or restore a LUT/result artifact."""


class TaskError(ReproError):
    """A parallel shard task raised a deterministic exception.

    Retrying such a task in a fresh worker would only reproduce the
    same failure (shards are pure functions of their seed), so the
    engine fails fast and attaches the shard id and task description.
    The original exception is chained as ``__cause__``.
    """

    def __init__(self, message, shard=None, label=None):
        super().__init__(message)
        self.shard = shard
        self.label = label


class WorkerCrashError(ReproError):
    """Worker processes kept dying past the configured retry budget."""
