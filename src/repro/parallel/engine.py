"""Process-pool execution engine for the Monte Carlo stages.

The paper's flow is embarrassingly parallel at every level -- transport
trials per LUT energy point, Vth-variation samples per POF grid point,
and independent array-MC campaigns per (particle, energy, vdd).  This
module is the one place that knows how to fan such work out across
worker processes and fold the partial results back:

* :func:`parallel_map` -- ordered map of a *module-level* worker
  function over a task list, through a process pool.  A shared
  read-only payload (simulator, engine, design...) is shipped to each
  worker once via the pool initializer instead of once per task.
* :func:`spawn_seeds` -- deterministic child ``SeedSequence`` streams
  off a caller's generator, the backbone of the engine's reproducibility
  contract.
* :class:`RetryPolicy` -- the fault-tolerance knobs: per-shard retry
  with exponential backoff for transient worker death, a progress
  watchdog timeout, and graceful degradation to partial results.

Determinism contract
--------------------
Callers split their work into *fixed-size* shards (independent of the
worker count), draw one spawned child stream per shard, and merge the
shard results **in shard order**.  ``parallel_map`` preserves input
order and ``n_jobs=1`` bypasses the pool entirely while running the
exact same sharded code path, so for a fixed seed the merged result is
bit-identical for any worker count.  Fault tolerance preserves the
contract: a retried shard reruns the *same* seed stream in a fresh
worker, and a shard replayed from a :class:`~repro.parallel.journal.
ShardJournal` checkpoint is byte-for-byte the result the crashed run
recorded -- so interrupted-and-resumed campaigns merge bit-identically
to uninterrupted ones.

Failure taxonomy
----------------
* **Transient** -- the worker process died (segfault, OOM kill,
  ``BrokenProcessPool``) or the watchdog declared the pool stuck
  (no shard completed for ``task_timeout_s``).  The failed shards are
  retried in fresh workers with exponential backoff, up to
  ``RetryPolicy.retries`` rounds.
* **Deterministic** -- the task function itself raised.  Retrying
  would reproduce the failure, so the map fails fast: on the pooled
  path with a :class:`~repro.errors.TaskError` carrying the shard id
  and the task (which embeds the shard's seed path; the original
  exception, which crossed a process boundary, is chained as
  ``__cause__``), and on the inline path by propagating the original
  exception unchanged (traceback intact, type still catchable).
* **Unrecoverable** -- transient failures outlasted the retry budget.
  With ``allow_partial=True`` the map returns the shards it has
  (``None`` for the lost ones, counted in ``parallel.degraded``) so
  callers can merge partial statistics flagged as degraded; otherwise
  it raises :class:`~repro.errors.WorkerCrashError`.

Worker-side metrics recorded through :mod:`repro.obs` are snapshotted
per task, returned with the result, and merged into the parent
registry, so ``--metrics-out`` manifests stay complete under
parallelism.

Live telemetry
--------------
When an :class:`~repro.obs.events.EventBus` is configured
(``--events``, :func:`~repro.obs.events.configure_events`), every map
additionally streams typed events *while it runs*: ``round``
start/end, per-shard ``progress`` (``started``/``finished`` emitted
**inside the worker** and shipped over a ``multiprocessing`` queue;
``retrying``/``lost`` emitted by the parent), and periodic
``heartbeat`` events with done/total counts and an ETA.  A pump
thread (:class:`_EventPump`) drains the worker queue into the bus,
which stamps the global ``seq`` that totally orders the stream.  With
no bus configured (the default), none of this machinery runs: no
queue is drained, no thread started, no event dict built.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError, TaskError, WorkerCrashError
from ..obs import get_logger, get_registry, kv, span
from ..obs.events import disable_events, emit_event, get_event_bus
from ..obs.registry import disable_metrics, enable_metrics
from .pool import get_lease, warm_pool_enabled
from .shm import PackedPayload, load_packed, pack_payload, shm_enabled

_log = get_logger(__name__)

__all__ = [
    "AUTO_INLINE_THRESHOLD_S",
    "WARM_AUTO_INLINE_THRESHOLD_S",
    "ParallelConfig",
    "RetryPolicy",
    "parallel_map",
    "resolve_jobs",
    "spawn_seeds",
]

#: Test-only fault-injection hook: set to ``"<label>:<index>:<marker>"``
#: to make the worker executing shard ``<index>`` of the map labelled
#: ``<label>`` die abruptly (``os._exit``) -- once: the marker file is
#: created before dying, and an existing marker disarms the hook.  Used
#: by the fault-injection tests and the CI fault-smoke job; never set
#: it in production.
FAULT_ENV = "REPRO_PARALLEL_KILL"


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the process-pool execution engine.

    Attributes
    ----------
    n_jobs:
        Worker processes; ``1`` runs inline (no pool), ``0`` means
        "one per CPU".
    start_method:
        ``multiprocessing`` start method (``None`` = platform default,
        ``fork`` on Linux).
    """

    n_jobs: int = 1
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.n_jobs < 0:
            raise ConfigError("n_jobs cannot be negative (0 means auto)")

    def resolved_jobs(self) -> int:
        return resolve_jobs(self.n_jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance knobs of :func:`parallel_map`.

    Attributes
    ----------
    retries:
        How many retry rounds transiently-failed shards get before the
        map gives up on them.  ``0`` fails on the first worker loss.
    backoff_s / backoff_multiplier / backoff_max_s:
        Exponential backoff between retry rounds: round ``k`` sleeps
        ``min(backoff_s * multiplier**(k-1), backoff_max_s)`` seconds.
    task_timeout_s:
        Progress watchdog: if **no** shard completes for this many
        seconds the in-flight shards are declared lost, their workers
        are terminated, and the shards are retried in a fresh pool.
        ``None`` disables the watchdog.  Only enforced on the pooled
        path -- inline execution cannot be preempted.
    allow_partial:
        What to do when transient failures outlast the retry budget:
        ``True`` (graceful degradation) returns partial results with
        ``None`` for the lost shards; ``False`` raises
        :class:`~repro.errors.WorkerCrashError`.
    """

    retries: int = 2
    backoff_s: float = 0.25
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 8.0
    task_timeout_s: Optional[float] = None
    allow_partial: bool = True

    def __post_init__(self):
        if self.retries < 0:
            raise ConfigError("retries cannot be negative")
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff durations cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigError("task timeout must be positive (None = off)")

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retry round ``attempt`` (1-based)."""
        return min(
            self.backoff_s * self.backoff_multiplier ** max(attempt - 1, 0),
            self.backoff_max_s,
        )

    def strict(self) -> "RetryPolicy":
        """This policy with graceful degradation turned off.

        Stages whose merge *requires* every shard (e.g. cell
        characterization grids) use this to turn unrecoverable loss
        into a loud :class:`~repro.errors.WorkerCrashError`.
        """
        if not self.allow_partial:
            return self
        return dataclasses.replace(self, allow_partial=False)


#: Fail-fast default used when no policy is given: no retries, no
#: degradation -- the exact pre-fault-tolerance behavior.
_NO_RETRY = RetryPolicy(retries=0, allow_partial=False)


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Effective worker count: ``None``/1 serial, 0 = one per CPU."""
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        raise ConfigError("n_jobs cannot be negative (0 means auto)")
    if n_jobs == 0:
        return os.cpu_count() or 1
    return n_jobs


def spawn_seeds(rng: np.random.Generator, n: int) -> List[np.random.SeedSequence]:
    """``n`` child seed sequences off a generator's root entropy.

    Uses ``np.random.SeedSequence.spawn`` on the generator's own seed
    sequence, so consecutive calls yield fresh, statistically
    independent streams while remaining a pure function of the
    caller's original seed and the call order.  Generators without an
    attached seed sequence (hand-built bit generators) fall back to a
    sequence seeded from the generator's stream.
    """
    if n < 0:
        raise ConfigError("cannot spawn a negative number of seeds")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:
        seed_seq = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    return seed_seq.spawn(n)


# -- worker-side plumbing ------------------------------------------------------

#: Shared read-only payload installed once per worker by the pool
#: initializer (under ``fork`` it is inherited, never pickled per task).
_WORKER_PAYLOAD: Any = None

#: Sentinel marking a shard that has neither a journaled nor a fresh
#: result yet (``None`` is a legal shard result, so it cannot serve).
_PENDING = object()

#: Worker-side end of the telemetry queue, installed by the pool
#: initializer (``None`` = this worker never emits events).
_EVENT_QUEUE: Any = None

#: Worker-side coalescing buffer.  Every ``put`` into the event queue
#: costs the worker a feeder-thread wake-up (~tens of µs of wall time
#: when shards are short), so ``started`` events are buffered and ride
#: along with the shard's ``finished`` put -- one queue message per
#: shard -- unless the *previous* shard ran longer than
#: :data:`_EVENT_FLUSH_BUSY_S`.  Shards within a round are homogeneous
#: campaigns, so the last duration predicts the next: for slow shards
#: the ``started`` event is pushed immediately (that is the event that
#: says *which* shard is stuck on *which* pid), for fast shards its
#: liveness value is nil and the batch halves the queue traffic.
_EVENT_FLUSH_BUSY_S = 0.05
_EVENT_BUFFER: List[dict] = []
_EVENT_LAST_BUSY_S: Optional[float] = None


def _emit_worker_event(
    state: str, label: str, index: int, flush: bool = True, **extra
):
    """Buffer one shard progress event; flush pushes the batch.

    Telemetry must never sink the science: a full/closed queue or a
    parent that went away just drops the batch.
    """
    queue = _EVENT_QUEUE
    if queue is None:
        return
    event = {
        "kind": "progress",
        "label": label,
        "index": index,
        "state": state,
        "pid": os.getpid(),
        "t_worker": time.time(),
    }
    event.update(extra)
    _EVENT_BUFFER.append(event)
    if not flush:
        return
    batch = list(_EVENT_BUFFER)
    _EVENT_BUFFER.clear()
    try:
        queue.put_nowait(batch)
    except Exception:  # pragma: no cover -- full pipe / dead parent
        pass


def _worker_init(payload, with_metrics: bool, event_queue=None):
    global _WORKER_PAYLOAD, _EVENT_QUEUE
    if isinstance(payload, PackedPayload):
        # caller-prepacked payload on a fresh (throwaway) pool: rebuild
        # it here once, exactly like the historical broadcast.
        payload = load_packed(payload)
    _WORKER_PAYLOAD = payload
    _EVENT_QUEUE = event_queue
    _EVENT_BUFFER.clear()
    # Under ``fork`` the worker inherits the parent's live bus (and
    # its open file descriptor): drop it -- worker events travel
    # through the queue to be sequenced by the parent, never straight
    # to the sink.
    disable_events()
    if with_metrics:
        # fresh registry per worker: task snapshots only carry
        # worker-side increments, never the parent's forked state.
        enable_metrics(fresh=True)


def _maybe_inject_fault(label: str, index: int, spec: Optional[str] = None):
    """Honor the :data:`FAULT_ENV` test hook (abrupt one-shot death).

    ``spec`` overrides the environment lookup: warm pool workers fork
    *before* a test arms the hook, so the parent captures the spec at
    submit time and ships it with the task.
    """
    if spec is None:
        spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    try:
        want_label, want_index, marker = spec.split(":", 2)
    except ValueError:
        return
    if label != want_label or index != int(want_index):
        return
    if os.path.exists(marker):
        return
    with open(marker, "w") as handle:
        handle.write("killed\n")
        handle.flush()
        os.fsync(handle.fileno())
    os._exit(17)


def _slow_shards() -> bool:
    """Whether the last shard ran long enough to flush eagerly."""
    return (
        _EVENT_LAST_BUSY_S is None
        or _EVENT_LAST_BUSY_S > _EVENT_FLUSH_BUSY_S
    )


def _invoke(fn, task, index: int, label: str):
    """Run one task in a worker; return (result, metrics snapshot, busy s)."""
    global _EVENT_LAST_BUSY_S
    _maybe_inject_fault(label, index)
    _emit_worker_event("started", label, index, flush=_slow_shards())
    t0 = time.perf_counter()
    result = fn(_WORKER_PAYLOAD, task)
    busy_s = time.perf_counter() - t0
    _EVENT_LAST_BUSY_S = busy_s
    _emit_worker_event("finished", label, index, busy_s=round(busy_s, 6))
    registry = get_registry()
    snapshot = None
    if registry.enabled:
        snapshot = registry.snapshot()
        registry.reset()
    return result, snapshot, busy_s


def _warm_worker_init(event_queue=None):
    """Initializer of *warm* pool workers: no payload, no metrics.

    Warm workers outlive the map that forked them, so nothing shipped
    at fork time can be trusted later: the payload travels per task as
    a :class:`~repro.parallel.shm.PackedPayload` (cached by
    fingerprint) and the metrics flag per task (the parent may enable
    or disable the registry between maps).  Under ``fork`` the worker
    inherits the parent's live registry state -- drop it so snapshots
    only ever carry worker-side increments.  The one exception is the
    telemetry ``event_queue`` (owned by the
    :class:`~repro.parallel.pool.PoolLease`, one per pool key): queues
    only cross the process boundary at construction time, so it is
    installed here for the worker's whole life; whether anything flows
    through it is decided per task by the ``with_events`` flag.
    """
    global _WORKER_PAYLOAD, _EVENT_QUEUE
    _WORKER_PAYLOAD = None
    _EVENT_QUEUE = event_queue
    _EVENT_BUFFER.clear()
    disable_events()
    disable_metrics()


def _sync_warm_metrics(with_metrics: bool):
    """Match the worker's registry state to the parent's (per task)."""
    if with_metrics:
        if not get_registry().enabled:
            enable_metrics(fresh=True)
    elif get_registry().enabled:
        disable_metrics()


def _invoke_packed(
    fn,
    task,
    index: int,
    label: str,
    packed,
    with_metrics,
    fault_spec=None,
    with_events=False,
):
    """Warm-pool counterpart of :func:`_invoke`.

    The payload arrives packed (pickled once in the parent, bulk
    arrays as shared-memory references) and is rebuilt at most once
    per fingerprint per worker; busy time still covers only ``fn``
    itself, matching the fresh-pool accounting.  ``fault_spec`` is the
    parent's :data:`FAULT_ENV` value at submit time (a warm worker's
    own environment predates the test arming the hook), and
    ``with_events`` the parent's live telemetry state (a warm worker's
    queue outlives any one map, so emission is decided per task, like
    metrics).
    """
    global _EVENT_LAST_BUSY_S
    _sync_warm_metrics(with_metrics)
    _maybe_inject_fault(label, index, spec=fault_spec)
    payload = load_packed(packed)
    if with_events:
        _emit_worker_event("started", label, index, flush=_slow_shards())
    t0 = time.perf_counter()
    result = fn(payload, task)
    busy_s = time.perf_counter() - t0
    _EVENT_LAST_BUSY_S = busy_s
    if with_events:
        _emit_worker_event("finished", label, index, busy_s=round(busy_s, 6))
    registry = get_registry()
    snapshot = None
    if registry.enabled:
        snapshot = registry.snapshot()
        registry.reset()
    return result, snapshot, busy_s


def _in_worker() -> bool:
    """True inside a pool worker (daemon), where nesting is forbidden."""
    return multiprocessing.current_process().daemon


def _shutdown_executor(executor: ProcessPoolExecutor):
    """Tear a pool down without waiting; terminate stuck workers."""
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover -- python < 3.9
        executor.shutdown(wait=False)
    processes = getattr(executor, "_processes", None)
    if processes:
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()


#: Minimum estimated per-worker work [s] that justifies spinning up a
#: pool.  Forking workers, shipping the payload, and collecting results
#: costs tens of milliseconds per worker on a typical host; below this
#: threshold the pool is pure overhead (measured in
#: ``BENCH_parallel.json``: tiny yield-LUT builds run ~5x slower with 2
#: workers than inline).
AUTO_INLINE_THRESHOLD_S = 0.05

#: Lower inline threshold used when a warm pool for the map's
#: (start method, jobs) key is already up: the spin-up cost is paid,
#: so only dispatch/IPC overhead (single-digit milliseconds) remains
#: to beat.
WARM_AUTO_INLINE_THRESHOLD_S = 0.005


def _should_auto_inline(
    cost_hint_s: Optional[float],
    n_pending: int,
    jobs: int,
    warm_ready: bool = False,
) -> bool:
    """Whether the estimated work is too small to justify a pool.

    Only active when the caller supplied an explicit ``cost_hint_s``
    (no hint means no basis for the estimate -- maps without a hint
    keep their requested worker count) and never while the
    fault-injection hook is armed (the kill tests target pooled
    workers by shard index).  With a warm pool already leased for this
    map's key (``warm_ready``), the threshold drops to
    :data:`WARM_AUTO_INLINE_THRESHOLD_S` -- spin-up is already paid,
    so mid-sized maps that used to inline now reuse the pool.
    """
    if cost_hint_s is None or os.environ.get(FAULT_ENV):
        return False
    threshold = (
        WARM_AUTO_INLINE_THRESHOLD_S if warm_ready else AUTO_INLINE_THRESHOLD_S
    )
    return cost_hint_s * n_pending / jobs < threshold


def parallel_map(
    fn: Callable[[Any, Any], Any],
    tasks: Sequence[Any],
    *,
    payload: Any = None,
    n_jobs: int = 1,
    label: str = "map",
    start_method: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    journal=None,
    cost_hint_s: Optional[float] = None,
    warm_pool: Optional[bool] = None,
    shm: Optional[bool] = None,
) -> list:
    """Ordered map of ``fn(payload, task)`` over ``tasks``.

    ``fn`` must be a module-level function (pickled by reference).  With
    ``n_jobs <= 1``, a single pending task, or when already inside a
    pool worker, the map runs inline -- no pool, no pickling --
    executing the identical code path, so results never depend on the
    worker count.

    Parameters
    ----------
    payload:
        Shared read-only object passed as ``fn``'s first argument.
        May be a :class:`~repro.parallel.shm.PackedPayload` the caller
        packed once (e.g. a flow fanning the same simulator across
        many maps): the warm path ships it as-is with zero re-packing,
        and the fresh/inline paths rebuild it transparently before use.
    retry:
        Fault-tolerance policy (see :class:`RetryPolicy`).  ``None``
        keeps the historical fail-fast behavior: any worker loss or
        task exception aborts the map.
    journal:
        Optional :class:`~repro.parallel.journal.ShardJournal`.  Shards
        already present in the journal are replayed from disk and
        skipped (counted in ``journal.resumed``); every freshly
        completed shard is durably recorded before the map returns, so
        a crashed campaign resumes with partial credit.
    cost_hint_s:
        Caller's estimate of one task's wall time [s].  When the
        estimated work per worker falls below
        :data:`AUTO_INLINE_THRESHOLD_S`, the map runs inline even with
        ``n_jobs > 1`` -- pool spin-up would cost more than it saves
        (logged, counted in ``parallel.auto_inline``).  Results are
        unaffected either way (the determinism contract).  ``None``
        (default) disables the heuristic.  When a warm pool for this
        map's key is already leased, the lower
        :data:`WARM_AUTO_INLINE_THRESHOLD_S` applies instead.
    warm_pool:
        Lease a warm executor from :mod:`repro.parallel.pool` for the
        first round instead of building a throwaway pool (``None`` =
        the process default, see
        :func:`~repro.parallel.pool.warm_pool_enabled`).  Retry rounds
        always run on fresh per-round pools, preserving the failure
        taxonomy exactly.  Results are bit-identical either way.
    shm:
        Ship bulk payload arrays through the shared-memory plane of
        :mod:`repro.parallel.shm` on the warm path (``None`` = the
        process default, see :func:`~repro.parallel.shm.shm_enabled`).
        Only affects transport cost, never results.

    Returns the results in task order.  Shards lost past the retry
    budget under ``allow_partial=True`` come back as ``None`` -- filter
    them and flag the merged statistics as degraded.

    Records ``parallel.*`` metrics when the registry is live: worker
    count, task count, per-label map wall time, retry/degraded counts,
    and the effective speedup (total worker busy time / wall time).
    """
    tasks = list(tasks)
    policy = retry if retry is not None else _NO_RETRY
    metrics = get_registry()
    results: list = [_PENDING] * len(tasks)

    if journal is not None:
        replayed = journal.load()
        for index, value in replayed.items():
            if 0 <= index < len(tasks):
                results[index] = value
        resumed = sum(1 for r in results if r is not _PENDING)
        if resumed:
            if metrics.enabled:
                metrics.counter("journal.resumed").inc(resumed)
            _log.info(
                "journal resume %s",
                kv(label=label, resumed=resumed, total=len(tasks)),
            )

    pending = [i for i in range(len(tasks)) if results[i] is _PENDING]
    if not pending:
        return results

    jobs = min(resolve_jobs(n_jobs), len(pending))
    t0 = time.perf_counter()
    busy_s = 0.0

    context = multiprocessing.get_context(start_method)
    in_worker = _in_worker()
    use_warm = jobs > 1 and not in_worker and warm_pool_enabled(warm_pool)
    warm_ready = use_warm and get_lease().has(context, jobs)

    auto_inlined = False
    if jobs > 1 and _should_auto_inline(
        cost_hint_s, len(pending), jobs, warm_ready
    ):
        auto_inlined = True
        if metrics.enabled:
            metrics.counter("parallel.auto_inline").inc()
        _log.info(
            "auto-inline %s",
            kv(
                label=label,
                tasks=len(pending),
                workers=jobs,
                est_per_worker_s=round(cost_hint_s * len(pending) / jobs, 4),
                threshold_s=(
                    WARM_AUTO_INLINE_THRESHOLD_S
                    if warm_ready
                    else AUTO_INLINE_THRESHOLD_S
                ),
            ),
        )
        jobs = 1

    if jobs <= 1 or len(pending) <= 1 or in_worker:
        path = "auto-inline" if auto_inlined else "inline"
        if metrics.enabled:
            metrics.counter("parallel.serial_maps").inc()
        emit_event(
            "round",
            label=label,
            phase="start",
            path=path,
            tasks=len(pending),
            workers=1,
        )
        inline_payload = (
            load_packed(payload)
            if isinstance(payload, PackedPayload)
            else payload
        )
        with metrics.time(f"parallel.map.{label}"), span(
            "parallel-map", label=label, path=path, tasks=len(pending)
        ):
            _run_inline(
                fn, tasks, pending, inline_payload, label, journal, results
            )
        lost: List[int] = []
    else:
        path = (
            "pool-warm-reuse"
            if warm_ready
            else ("pool-warm" if use_warm else "pool-fresh")
        )
        emit_event(
            "round",
            label=label,
            phase="start",
            path=path,
            tasks=len(pending),
            workers=jobs,
        )
        with metrics.time(f"parallel.map.{label}"), span(
            "parallel-map",
            label=label,
            path=path,
            tasks=len(pending),
            workers=jobs,
        ):
            busy_s, lost = _run_pooled(
                fn,
                tasks,
                pending,
                payload,
                jobs,
                label,
                context,
                policy,
                journal,
                results,
                metrics,
                use_warm=use_warm,
                use_shm=shm_enabled(shm),
            )
        wall_s = time.perf_counter() - t0
        if metrics.enabled:
            metrics.counter("parallel.maps").inc()
            metrics.counter("parallel.tasks").inc(len(tasks))
            metrics.gauge("parallel.workers").set(jobs)
            if wall_s > 0:
                metrics.gauge(f"parallel.speedup.{label}").set(busy_s / wall_s)
        _log.debug(
            "parallel map %s",
            kv(
                label=label,
                tasks=len(tasks),
                workers=jobs,
                wall_s=round(wall_s, 4),
                busy_s=round(busy_s, 4),
                speedup=round(busy_s / wall_s, 2) if wall_s > 0 else 0.0,
            ),
        )

    if lost:
        if metrics.enabled:
            metrics.counter("parallel.degraded").inc(len(lost))
            metrics.counter("parallel.degraded_maps").inc()
        if not policy.allow_partial:
            raise WorkerCrashError(
                f"{len(lost)} shard(s) of {label!r} lost to worker crashes "
                f"after {policy.retries} retry round(s) "
                f"(shards {lost[:8]}{'...' if len(lost) > 8 else ''})"
            )
        _log.warning(
            "degraded map %s",
            kv(label=label, lost=len(lost), tasks=len(tasks)),
        )
        for index in lost:
            results[index] = None
            emit_event(
                "progress", label=label, index=index, state="lost"
            )
    emit_event(
        "round",
        label=label,
        phase="end",
        path=path,
        tasks=len(pending),
        lost=len(lost),
        wall_s=round(time.perf_counter() - t0, 4),
    )
    return results


def _run_inline(fn, tasks, pending, payload, label, journal, results):
    """Serial execution of the pending shards (identical code path).

    Inline execution has no transient failure mode -- a worker death
    here *is* a process death (the journal preserves partial credit
    for the next run) -- and task exceptions propagate unchanged: the
    traceback is intact and the exception type stays catchable, so
    wrapping in :class:`~repro.errors.TaskError` (needed on the pooled
    path, where the exception crossed a process boundary) would only
    obscure it.

    Progress events are emitted straight to the bus (no queue -- the
    shards run *in* the parent), so a live consumer sees the same
    ``started``/``finished`` stream regardless of the execution path.
    """
    bus = get_event_bus()
    pid = os.getpid()
    for index in pending:
        _maybe_inject_fault(label, index)
        if bus is not None:
            bus.emit(
                "progress",
                label=label,
                index=index,
                state="started",
                pid=pid,
                t_worker=time.time(),
            )
            t0 = time.perf_counter()
        result = fn(payload, tasks[index])
        if bus is not None:
            bus.emit(
                "progress",
                label=label,
                index=index,
                state="finished",
                pid=pid,
                t_worker=time.time(),
                busy_s=round(time.perf_counter() - t0, 6),
            )
        results[index] = result
        if journal is not None:
            journal.record(index, result)


def _run_pooled(
    fn,
    tasks,
    pending,
    payload,
    jobs,
    label,
    context,
    policy,
    journal,
    results,
    metrics,
    use_warm=False,
    use_shm=True,
):
    """Pool execution with retry rounds; returns (busy_s, lost shards).

    With ``use_warm``, the first round leases a warm executor and ships
    the payload packed (see :func:`_run_round`); retry rounds always
    build a fresh throwaway pool with the historical initializer-based
    payload broadcast, so transient-failure recovery behaves exactly as
    it did before pool leasing existed.
    """
    remaining = list(pending)
    busy_total = 0.0
    attempt = 0
    packed = None
    if use_warm:
        if isinstance(payload, PackedPayload):
            packed = payload  # caller packed it once; ship as-is
        else:
            with metrics.time("parallel.pack"):
                packed = pack_payload(payload, use_shm=use_shm)
    while remaining:
        transient, fatal, busy_s = _run_round(
            fn,
            tasks,
            remaining,
            payload,
            min(jobs, len(remaining)),
            label,
            context,
            policy,
            journal,
            results,
            metrics,
            packed=packed if attempt == 0 else None,
        )
        busy_total += busy_s
        if fatal is not None:
            index, exc = fatal
            raise TaskError(
                f"shard {index} of {label!r} failed deterministically: "
                f"{exc} (task={tasks[index]!r})",
                shard=index,
                label=label,
            ) from exc
        remaining = sorted(transient)
        if not remaining:
            break
        attempt += 1
        if attempt > policy.retries:
            return busy_total, remaining
        if metrics.enabled:
            metrics.counter("parallel.retries").inc(len(remaining))
        for index in remaining:
            emit_event(
                "progress",
                label=label,
                index=index,
                state="retrying",
                attempt=attempt,
                retries=policy.retries,
            )
        delay = policy.backoff_for(attempt)
        _log.warning(
            "retrying lost shards %s",
            kv(
                label=label,
                shards=len(remaining),
                attempt=f"{attempt}/{policy.retries}",
                backoff_s=round(delay, 3),
            ),
        )
        if delay > 0:
            time.sleep(delay)
    return busy_total, []


class _EventPump:
    """Drains one round's worker event queue into the parent bus.

    A daemon thread forwards worker-originated ``progress`` dicts to
    :meth:`~repro.obs.events.EventBus.emit_raw` (which stamps the
    global ``seq``) and interleaves ``heartbeat`` events -- one
    immediately at round start, one every ``bus.heartbeat_s`` while
    shards are in flight, and one final beat at round end -- carrying
    done/total progress, elapsed wall time, and a linear ETA.  A
    stalled round therefore still produces heartbeats (with a frozen
    ``done``), which is exactly the signal ``repro-ser obs tail``
    turns into stall warnings; a *silent* stream means the parent
    itself died.
    """

    #: Queue poll period [s]; bounds both heartbeat jitter and how
    #: long stop() can lag the round's end.
    _POLL_S = 0.05

    def __init__(self, bus, queue, label: str, total: int):
        self.bus = bus
        self.queue = queue
        self.label = label
        self.total = total
        self.done = 0
        self._t0 = time.monotonic()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"event-pump-{label}", daemon=True
        )
        self._thread.start()

    def _heartbeat(self, final: bool = False):
        elapsed = time.monotonic() - self._t0
        eta = None
        if 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
        self.bus.emit(
            "heartbeat",
            label=self.label,
            done=self.done,
            total=self.total,
            elapsed_s=round(elapsed, 4),
            eta_s=round(eta, 4) if eta is not None else None,
            final=final,
        )

    def _forward(self, item):
        # workers coalesce: one queue message is a batch (list) of
        # progress events, kept in emission order.
        events = item if isinstance(item, list) else [item]
        for event in events:
            if event.get("state") == "finished":
                self.done += 1
            self.bus.emit_raw(event)

    def _drain(self):
        while True:
            try:
                event = self.queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            if event is not None:
                self._forward(event)

    def _run(self):
        self._heartbeat()
        next_beat = self._t0 + self.bus.heartbeat_s
        while not self._stop.is_set():
            try:
                event = self.queue.get(timeout=self._POLL_S)
            except queue_mod.Empty:
                event = None
            except (OSError, ValueError):  # queue torn down under us
                break
            if event is not None:
                self._forward(event)
            if time.monotonic() >= next_beat:
                self._heartbeat()
                next_beat = time.monotonic() + self.bus.heartbeat_s

    def stop(self):
        """End the round: drain stragglers, emit the final heartbeat."""
        self._stop.set()
        # A ``None`` sentinel wakes the poll loop immediately -- without
        # it every round's teardown eats up to a full _POLL_S, which
        # dominates sweeps made of many short campaign maps.
        try:
            self.queue.put_nowait(None)
        except (OSError, ValueError):  # pragma: no cover -- torn down
            pass
        self._thread.join(timeout=5.0)
        self._drain()
        self._heartbeat(final=True)


def _run_round(
    fn,
    tasks,
    indices,
    payload,
    jobs,
    label,
    context,
    policy,
    journal,
    results,
    metrics,
    packed=None,
):
    """One pool round over ``indices``.

    With ``packed`` set (warm first round), the executor is leased from
    the process-wide :class:`~repro.parallel.pool.PoolLease` and every
    task carries the packed payload; the pool survives the round unless
    it ended badly (worker death, watchdog), in which case the lease is
    invalidated so the *next* map starts clean.  Without ``packed``,
    this is the historical throwaway pool with initializer broadcast.

    Returns ``(transient, fatal, busy_s)``: the shard indices lost to
    worker death or the watchdog, the first deterministic task failure
    (or ``None``), and the summed worker busy time of the shards that
    did complete -- which are stored into ``results`` and journaled
    immediately, so even a round that ends badly keeps its credit.
    """
    warm = packed is not None
    bus = get_event_bus()
    fresh_queue = None
    if warm:
        executor, _reused = get_lease().acquire(
            context, jobs, initializer=_warm_worker_init
        )
        event_queue = get_lease().event_queue(context, jobs)
    else:
        # fresh pools are born and die with the round, so the queue
        # only needs to exist when someone will drain it.
        fresh_queue = context.Queue() if bus is not None else None
        event_queue = fresh_queue
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_worker_init,
            initargs=(payload, metrics.enabled, event_queue),
        )
    pump = (
        _EventPump(bus, event_queue, label, len(indices))
        if bus is not None and event_queue is not None
        else None
    )
    transient: List[int] = []
    fatal = None
    busy_total = 0.0
    healthy = True
    try:
        if warm:
            fault_spec = os.environ.get(FAULT_ENV)
            try:
                waiting = {
                    executor.submit(
                        _invoke_packed,
                        fn,
                        tasks[i],
                        i,
                        label,
                        packed,
                        metrics.enabled,
                        fault_spec,
                        bus is not None,
                    ): i
                    for i in indices
                }
            except BrokenProcessPool:
                # a worker died idle between maps: the whole round is
                # transient, the lease is invalidated in finally.
                healthy = False
                transient.extend(indices)
                return transient, None, busy_total
        else:
            waiting = {
                executor.submit(_invoke, fn, tasks[i], i, label): i
                for i in indices
            }
        while waiting:
            done, _ = _futures_wait(
                list(waiting),
                timeout=policy.task_timeout_s,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # watchdog: nothing completed within the window --
                # declare the in-flight shards lost and kill the pool.
                healthy = False
                transient.extend(waiting.values())
                _log.warning(
                    "watchdog expired %s",
                    kv(
                        label=label,
                        stuck=len(waiting),
                        timeout_s=policy.task_timeout_s,
                    ),
                )
                return transient, None, busy_total
            broken = False
            for future in done:
                index = waiting.pop(future)
                try:
                    result, snapshot, busy_s = future.result()
                except (BrokenProcessPool, CancelledError):
                    transient.append(index)
                    broken = True
                except Exception as exc:
                    fatal = (index, exc)
                    if warm:
                        # keep the healthy pool; drop what we can of
                        # the still-queued work before failing fast.
                        for pending_future in waiting:
                            pending_future.cancel()
                    return transient, fatal, busy_total
                else:
                    results[index] = result
                    busy_total += busy_s
                    if snapshot is not None:
                        metrics.merge_snapshot(snapshot)
                    if journal is not None:
                        journal.record(index, result)
            if broken:
                # the pool is unusable: every shard still waiting will
                # fail the same way -- mark them lost in one sweep.
                healthy = False
                transient.extend(waiting.values())
                waiting.clear()
        return transient, None, busy_total
    finally:
        if pump is not None:
            pump.stop()
        if warm:
            if not healthy:
                get_lease().invalidate(context, jobs)
        else:
            _shutdown_executor(executor)
            if fresh_queue is not None:
                try:
                    fresh_queue.close()
                    fresh_queue.cancel_join_thread()
                except (OSError, ValueError):  # pragma: no cover
                    pass
