"""Process-pool execution engine for the Monte Carlo stages.

The paper's flow is embarrassingly parallel at every level -- transport
trials per LUT energy point, Vth-variation samples per POF grid point,
and independent array-MC campaigns per (particle, energy, vdd).  This
module is the one place that knows how to fan such work out across
worker processes and fold the partial results back:

* :func:`parallel_map` -- ordered map of a *module-level* worker
  function over a task list, through a ``multiprocessing`` pool.  A
  shared read-only payload (simulator, engine, design...) is shipped to
  each worker once via the pool initializer instead of once per task.
* :func:`spawn_seeds` -- deterministic child ``SeedSequence`` streams
  off a caller's generator, the backbone of the engine's reproducibility
  contract.

Determinism contract
--------------------
Callers split their work into *fixed-size* shards (independent of the
worker count), draw one spawned child stream per shard, and merge the
shard results **in shard order**.  ``parallel_map`` preserves input
order and ``n_jobs=1`` bypasses the pool entirely while running the
exact same sharded code path, so for a fixed seed the merged result is
bit-identical for any worker count.

Worker-side metrics recorded through :mod:`repro.obs` are snapshotted
per task, returned with the result, and merged into the parent
registry, so ``--metrics-out`` manifests stay complete under
parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..obs import get_logger, get_registry, kv
from ..obs.registry import enable_metrics

_log = get_logger(__name__)

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "resolve_jobs",
    "spawn_seeds",
]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the process-pool execution engine.

    Attributes
    ----------
    n_jobs:
        Worker processes; ``1`` runs inline (no pool), ``0`` means
        "one per CPU".
    start_method:
        ``multiprocessing`` start method (``None`` = platform default,
        ``fork`` on Linux).
    """

    n_jobs: int = 1
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.n_jobs < 0:
            raise ConfigError("n_jobs cannot be negative (0 means auto)")

    def resolved_jobs(self) -> int:
        return resolve_jobs(self.n_jobs)


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Effective worker count: ``None``/1 serial, 0 = one per CPU."""
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        raise ConfigError("n_jobs cannot be negative (0 means auto)")
    if n_jobs == 0:
        return os.cpu_count() or 1
    return n_jobs


def spawn_seeds(rng: np.random.Generator, n: int) -> List[np.random.SeedSequence]:
    """``n`` child seed sequences off a generator's root entropy.

    Uses ``np.random.SeedSequence.spawn`` on the generator's own seed
    sequence, so consecutive calls yield fresh, statistically
    independent streams while remaining a pure function of the
    caller's original seed and the call order.  Generators without an
    attached seed sequence (hand-built bit generators) fall back to a
    sequence seeded from the generator's stream.
    """
    if n < 0:
        raise ConfigError("cannot spawn a negative number of seeds")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:
        seed_seq = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    return seed_seq.spawn(n)


# -- worker-side plumbing ------------------------------------------------------

#: Shared read-only payload installed once per worker by the pool
#: initializer (under ``fork`` it is inherited, never pickled per task).
_WORKER_PAYLOAD: Any = None


def _worker_init(payload, with_metrics: bool):
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload
    if with_metrics:
        # fresh registry per worker: task snapshots only carry
        # worker-side increments, never the parent's forked state.
        enable_metrics(fresh=True)


def _invoke(item):
    """Run one (fn, task) pair; return (result, metrics snapshot, busy s)."""
    fn, task = item
    t0 = time.perf_counter()
    result = fn(_WORKER_PAYLOAD, task)
    busy_s = time.perf_counter() - t0
    registry = get_registry()
    snapshot = None
    if registry.enabled:
        snapshot = registry.snapshot()
        registry.reset()
    return result, snapshot, busy_s


def _in_worker() -> bool:
    """True inside a pool worker (daemon), where nesting is forbidden."""
    return multiprocessing.current_process().daemon


def parallel_map(
    fn: Callable[[Any, Any], Any],
    tasks: Sequence[Any],
    *,
    payload: Any = None,
    n_jobs: int = 1,
    label: str = "map",
    start_method: Optional[str] = None,
) -> list:
    """Ordered map of ``fn(payload, task)`` over ``tasks``.

    ``fn`` must be a module-level function (pickled by reference).  With
    ``n_jobs <= 1``, a single task, or when already inside a pool
    worker, the map runs inline -- no pool, no pickling -- executing the
    identical code path, so results never depend on the worker count.

    Records ``parallel.*`` metrics when the registry is live: worker
    count, task count, per-label map wall time, queue overhead,
    snapshot-merge time and the effective speedup (total worker busy
    time / wall time).
    """
    tasks = list(tasks)
    jobs = min(resolve_jobs(n_jobs), len(tasks))
    metrics = get_registry()

    if jobs <= 1 or len(tasks) <= 1 or _in_worker():
        if metrics.enabled:
            metrics.counter("parallel.serial_maps").inc()
            with metrics.time(f"parallel.map.{label}"):
                return [fn(payload, task) for task in tasks]
        return [fn(payload, task) for task in tasks]

    t0 = time.perf_counter()
    context = multiprocessing.get_context(start_method)
    with context.Pool(
        processes=jobs,
        initializer=_worker_init,
        initargs=(payload, metrics.enabled),
    ) as pool:
        packed = pool.map(_invoke, [(fn, task) for task in tasks], chunksize=1)
    wall_s = time.perf_counter() - t0

    results = [result for result, _, _ in packed]
    busy_s = sum(busy for _, _, busy in packed)
    if metrics.enabled:
        merge_t0 = time.perf_counter()
        for _, snapshot, _ in packed:
            if snapshot is not None:
                metrics.merge_snapshot(snapshot)
        merge_s = time.perf_counter() - merge_t0
        metrics.counter("parallel.maps").inc()
        metrics.counter("parallel.tasks").inc(len(tasks))
        metrics.gauge("parallel.workers").set(jobs)
        metrics.timer(f"parallel.map.{label}").observe(wall_s)
        metrics.timer(f"parallel.merge.{label}").observe(merge_s)
        # pool overhead beyond perfectly-packed worker busy time
        metrics.timer(f"parallel.queue.{label}").observe(
            max(wall_s - busy_s / jobs, 0.0)
        )
        if wall_s > 0:
            metrics.gauge(f"parallel.speedup.{label}").set(busy_s / wall_s)
    _log.debug(
        "parallel map %s",
        kv(
            label=label,
            tasks=len(tasks),
            workers=jobs,
            wall_s=round(wall_s, 4),
            busy_s=round(busy_s, 4),
            speedup=round(busy_s / wall_s, 2) if wall_s > 0 else 0.0,
        ),
    )
    return results
