"""Crash-safe shard journals: the campaign checkpoint format.

A :class:`ShardJournal` gives a Monte Carlo campaign partial credit
for the shards it has already finished: every completed shard result
is appended to a JSONL checkpoint file as soon as it is collected, so
a crashed, OOM-killed, or interrupted campaign resumes mid-flight --
journaled shards are replayed from disk, only the missing ones rerun.
Because every shard draws from its own spawned seed stream (see the
determinism contract in :mod:`repro.parallel.engine`), replayed and
freshly computed shards merge bit-identically.

Durability discipline
---------------------
Each record is one self-contained JSON line carrying the campaign key,
the shard index, the encoded result, and a SHA-256 content digest.  A
record is a single ``O_APPEND`` write, flushed and fsynced before
:meth:`ShardJournal.record` returns, so a crash can lose at most the
shard in flight; a torn trailing line (or any hand-edited / bit-rotted
entry) fails the digest check on load and is discarded -- counted in
the ``journal.invalid`` metric -- instead of poisoning the resume.
Campaign keys are sha256 configuration hashes (see
:meth:`repro.io.ArtifactCache.journal_path`), so a journal written
under one configuration can never leak shards into another.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..obs import get_logger, get_registry, kv

_log = get_logger(__name__)

__all__ = ["ShardJournal"]

#: Journal line format version; bumped on incompatible layout changes.
_JOURNAL_VERSION = 1


def _identity(value):
    return value


def _entry_digest(key: str, shard: int, payload) -> str:
    """Content digest of one journal entry (detects torn/corrupt lines)."""
    canon = json.dumps(
        [key, shard, payload], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


class ShardJournal:
    """Append-only checkpoint of completed shard results.

    Parameters
    ----------
    path:
        The JSONL checkpoint file (conventionally inside the
        :class:`~repro.io.ArtifactCache` directory).
    key:
        Campaign identity -- typically the sha256 config hash of the
        campaign.  Entries whose key does not match are discarded on
        load, so a stale journal from a different configuration can
        never contribute shards.
    encode / decode:
        Optional converters between shard results and JSON-safe
        payloads (identity by default).  ``decode(encode(r))`` must
        reproduce ``r`` exactly for the bit-identical resume contract
        to hold; JSON round-trips Python floats exactly (shortest
        round-trip repr), so ``tolist()``-based encodings qualify.
    """

    def __init__(
        self,
        path: Union[str, Path],
        key: str,
        encode: Optional[Callable[[Any], Any]] = None,
        decode: Optional[Callable[[Any], Any]] = None,
    ):
        self.path = Path(path)
        self.key = str(key)
        self._encode = encode if encode is not None else _identity
        self._decode = decode if decode is not None else _identity

    # -- reading -----------------------------------------------------------

    def load(self) -> Dict[int, Any]:
        """Replay the journal: ``{shard index: decoded result}``.

        Corrupt lines -- torn tails from a crash mid-append, checksum
        or key mismatches, undecodable payloads -- are skipped and
        counted in the ``journal.invalid`` counter rather than raised:
        a damaged checkpoint degrades to a smaller head start, never to
        a crash or a wrong result.
        """
        if not self.path.exists():
            return {}
        replayed: Dict[int, Any] = {}
        invalid = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    if not isinstance(entry, dict):
                        raise ValueError("entry is not an object")
                    if entry.get("key") != self.key:
                        raise ValueError("campaign key mismatch")
                    shard = int(entry["shard"])
                    payload = entry["result"]
                    if entry.get("sha") != _entry_digest(
                        self.key, shard, payload
                    ):
                        raise ValueError("checksum mismatch")
                    replayed[shard] = self._decode(payload)
                except Exception:
                    invalid += 1
                    continue
        if invalid:
            get_registry().counter("journal.invalid").inc(invalid)
            _log.warning(
                "discarded corrupt journal entries %s",
                kv(path=str(self.path), invalid=invalid, kept=len(replayed)),
            )
        return replayed

    # -- writing -----------------------------------------------------------

    def record(self, shard: int, result):
        """Durably append one completed shard result.

        The line is written in a single ``write`` on an ``O_APPEND``
        handle, flushed, and fsynced before returning, so a checkpoint
        survives anything short of storage loss.
        """
        payload = self._encode(result)
        entry = {
            "v": _JOURNAL_VERSION,
            "key": self.key,
            "shard": int(shard),
            "result": payload,
            "sha": _entry_digest(self.key, int(shard), payload),
        }
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        get_registry().counter("journal.records").inc()

    def clear(self):
        """Delete the checkpoint (call once the campaign has merged)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
