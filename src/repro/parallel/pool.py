"""Warm process-pool leases for the parallel engine.

A flow-level sweep issues one :func:`~repro.parallel.parallel_map` per
campaign -- hundreds per run -- and historically every call built and
tore down its own ``ProcessPoolExecutor``.  Forking workers costs tens
of milliseconds each, which dominates small campaigns.  This module
keeps one executor warm per ``(start method, worker count)`` key and
leases it to successive maps:

* :meth:`PoolLease.acquire` returns the cached executor for a key (or
  creates one), counting ``parallel.pool.created`` /
  ``parallel.pool.reused``.
* :meth:`PoolLease.invalidate` shuts a pool down hard when a round
  ended badly (worker death, watchdog expiry) -- the next map gets a
  fresh warm pool, and the retry round that follows always runs on a
  throwaway per-round pool so the fault taxonomy of
  :mod:`repro.parallel.engine` is preserved bit-for-bit.
* :meth:`PoolLease.shutdown_all` (also registered ``atexit``) tears
  every warm pool down.

Warm workers are started *without* a payload: each task ships a
:class:`~repro.parallel.shm.PackedPayload` instead, which the worker
rebuilds once per distinct payload fingerprint (see
:mod:`repro.parallel.shm`).

Each warm pool also owns one ``multiprocessing`` **event queue**,
created alongside the executor and handed to every worker through the
pool initializer (queues are only picklable at process-construction
time, so the queue must exist *before* the workers do -- per-map
plumbing would be too late for workers that outlive the map).  Workers
push small telemetry dicts (shard started/finished, see
:mod:`repro.obs.events`) through it mid-round; the engine's pump
thread drains it into the parent :class:`~repro.obs.events.EventBus`.
The queue always exists -- whether anything flows is decided per task
by the parent's live telemetry state, so an idle queue costs one pipe.

Disable with ``REPRO_NO_WARM_POOL=1``, ``--no-warm-pool``, or
:func:`set_warm_pool_default` -- maps then fall back to the historical
pool-per-call behavior, with identical results either way.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

from ..obs import get_logger, get_registry, kv

_log = get_logger(__name__)

__all__ = [
    "PoolLease",
    "get_lease",
    "set_warm_pool_default",
    "warm_pool_enabled",
]

#: Kill switch: set to any non-empty value to disable warm pools
#: process-wide (every map builds and tears down its own pool).
ENV_DISABLE = "REPRO_NO_WARM_POOL"

_DEFAULT_ENABLED = True


def warm_pool_enabled(override: Optional[bool] = None) -> bool:
    """Effective on/off state of warm pool leasing.

    ``REPRO_NO_WARM_POOL`` beats everything (operational kill switch),
    an explicit ``override`` (CLI flag, config field) beats the module
    default set by :func:`set_warm_pool_default`.
    """
    if os.environ.get(ENV_DISABLE):
        return False
    if override is not None:
        return bool(override)
    return _DEFAULT_ENABLED


def set_warm_pool_default(enabled: bool) -> None:
    """Set the process-wide default used when no override is given."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)


def _pool_key(context, jobs: int) -> Tuple[str, int]:
    return (context.get_start_method(), int(jobs))


class PoolLease:
    """Keeps one warm ``ProcessPoolExecutor`` per (context, jobs) key."""

    def __init__(self):
        self._owner_pid = os.getpid()
        self._pools: Dict[Tuple[str, int], ProcessPoolExecutor] = {}
        self._queues: Dict[Tuple[str, int], object] = {}
        self._atexit_registered = False

    def __len__(self) -> int:
        return len(self._pools)

    def has(self, context, jobs: int) -> bool:
        """Whether a healthy warm pool for this key is already up."""
        executor = self._pools.get(_pool_key(context, jobs))
        return executor is not None and not self._broken(executor)

    def event_queue(self, context, jobs: int):
        """The telemetry queue wired into this key's workers (or None)."""
        return self._queues.get(_pool_key(context, jobs))

    @staticmethod
    def _close_queue(queue) -> None:
        if queue is None:
            return
        try:
            queue.close()
            queue.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover -- defensive
            pass

    @staticmethod
    def _broken(executor: ProcessPoolExecutor) -> bool:
        return bool(getattr(executor, "_broken", False))

    def acquire(
        self, context, jobs: int, initializer=None, initargs=()
    ) -> Tuple[ProcessPoolExecutor, bool]:
        """The warm executor for a key; returns ``(executor, reused)``.

        A cached-but-broken executor is replaced transparently (still
        counted as a creation, plus ``parallel.pool.invalidated``).
        """
        key = _pool_key(context, jobs)
        metrics = get_registry()
        executor = self._pools.get(key)
        if executor is not None and not self._broken(executor):
            if metrics.enabled:
                metrics.counter("parallel.pool.reused").inc()
            return executor, True
        if executor is not None:
            self.invalidate(context, jobs)
        # The telemetry queue must be born with the pool: queues are
        # only picklable through the Process constructor, and warm
        # workers outlive any single map.  Initializers take it as
        # their first argument.
        queue = context.Queue() if initializer is not None else None
        if initializer is not None:
            initargs = (queue,) + tuple(initargs)
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )
        self._pools[key] = executor
        if queue is not None:
            self._queues[key] = queue
        if not self._atexit_registered:
            atexit.register(self.shutdown_all)
            self._atexit_registered = True
        if metrics.enabled:
            metrics.counter("parallel.pool.created").inc()
            metrics.gauge("parallel.pool.active").set(len(self._pools))
        _log.debug(
            "warm pool created %s", kv(method=key[0], workers=key[1])
        )
        return executor, False

    def invalidate(self, context, jobs: int) -> None:
        """Discard a key's pool after a bad round (hard shutdown)."""
        key = _pool_key(context, jobs)
        executor = self._pools.pop(key, None)
        if executor is None:
            self._close_queue(self._queues.pop(key, None))
            return
        # local import: engine imports this module at load time
        from .engine import _shutdown_executor

        _shutdown_executor(executor)
        self._close_queue(self._queues.pop(key, None))
        metrics = get_registry()
        if metrics.enabled:
            metrics.counter("parallel.pool.invalidated").inc()
            metrics.gauge("parallel.pool.active").set(len(self._pools))
        _log.debug(
            "warm pool invalidated %s",
            kv(method=context.get_start_method(), workers=jobs),
        )

    def shutdown_all(self) -> None:
        """Tear every warm pool down (atexit hook; PID-guarded)."""
        if os.getpid() != self._owner_pid:
            self._pools.clear()
            self._queues.clear()
            return
        from .engine import _shutdown_executor

        for executor in self._pools.values():
            # graceful for healthy idle pools: waiting lets the manager
            # thread deregister itself, so the interpreter's own exit
            # hook finds no half-closed pipes to poke.  Broken pools
            # fall back to the hard teardown.
            if self._broken(executor):
                _shutdown_executor(executor)
            else:
                try:
                    executor.shutdown(wait=True, cancel_futures=True)
                except Exception:  # pragma: no cover -- defensive
                    _shutdown_executor(executor)
        self._pools.clear()
        for queue in self._queues.values():
            self._close_queue(queue)
        self._queues.clear()
        metrics = get_registry()
        if metrics.enabled:
            metrics.gauge("parallel.pool.active").set(0)


_LEASE: Optional[PoolLease] = None


def get_lease() -> PoolLease:
    """The process-wide :class:`PoolLease` (created lazily)."""
    global _LEASE
    if _LEASE is None or _LEASE._owner_pid != os.getpid():
        # forked children never reuse (or tear down) the parent's pools
        _LEASE = PoolLease()
    return _LEASE
