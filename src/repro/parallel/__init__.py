"""Parallel campaign execution: sharded Monte Carlo across processes.

See :mod:`repro.parallel.engine` for the determinism contract (fixed
sharding + spawned child streams + ordered merges = bit-identical
results for any worker count) and the fault-tolerance layer
(:class:`RetryPolicy` retry/backoff/watchdog, :class:`ShardJournal`
crash-safe checkpoints, graceful degradation to partial statistics).
:mod:`repro.parallel.pool` keeps worker pools warm across successive
maps and :mod:`repro.parallel.shm` ships bulk payload arrays through
shared memory -- both pure transport optimizations that never change
results.
"""

from .engine import (
    AUTO_INLINE_THRESHOLD_S,
    WARM_AUTO_INLINE_THRESHOLD_S,
    ParallelConfig,
    RetryPolicy,
    parallel_map,
    resolve_jobs,
    spawn_seeds,
)
from .journal import ShardJournal
from .pool import PoolLease, get_lease, set_warm_pool_default, warm_pool_enabled
from .shm import (
    MIN_SHM_BYTES,
    PackedPayload,
    SharedArrayPack,
    array_fingerprint,
    get_pack,
    pack_payload,
    set_shm_default,
    shm_enabled,
)

__all__ = [
    "AUTO_INLINE_THRESHOLD_S",
    "WARM_AUTO_INLINE_THRESHOLD_S",
    "MIN_SHM_BYTES",
    "PackedPayload",
    "ParallelConfig",
    "PoolLease",
    "RetryPolicy",
    "SharedArrayPack",
    "ShardJournal",
    "array_fingerprint",
    "get_lease",
    "get_pack",
    "pack_payload",
    "parallel_map",
    "resolve_jobs",
    "set_shm_default",
    "set_warm_pool_default",
    "shm_enabled",
    "spawn_seeds",
    "warm_pool_enabled",
]
