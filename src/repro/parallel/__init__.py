"""Parallel campaign execution: sharded Monte Carlo across processes.

See :mod:`repro.parallel.engine` for the determinism contract (fixed
sharding + spawned child streams + ordered merges = bit-identical
results for any worker count).
"""

from .engine import ParallelConfig, parallel_map, resolve_jobs, spawn_seeds

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "resolve_jobs",
    "spawn_seeds",
]
