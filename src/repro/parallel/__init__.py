"""Parallel campaign execution: sharded Monte Carlo across processes.

See :mod:`repro.parallel.engine` for the determinism contract (fixed
sharding + spawned child streams + ordered merges = bit-identical
results for any worker count) and the fault-tolerance layer
(:class:`RetryPolicy` retry/backoff/watchdog, :class:`ShardJournal`
crash-safe checkpoints, graceful degradation to partial statistics).
"""

from .engine import (
    AUTO_INLINE_THRESHOLD_S,
    ParallelConfig,
    RetryPolicy,
    parallel_map,
    resolve_jobs,
    spawn_seeds,
)
from .journal import ShardJournal

__all__ = [
    "AUTO_INLINE_THRESHOLD_S",
    "ParallelConfig",
    "RetryPolicy",
    "ShardJournal",
    "parallel_map",
    "resolve_jobs",
    "spawn_seeds",
]
