"""Zero-copy shared-memory payload plane for the parallel engine.

A flow-level sweep runs hundreds of campaigns over the *same* static
inputs -- the array layout's ``packed_boxes``, the characterized
:class:`~repro.sram.PofTable` grids, the electron-yield LUT quantile
rows, the :class:`~repro.sram.ivtab.IVTables` surfaces.  Shipping them
to every worker of every map via pickle is the dominant broadcast cost
once pools are kept warm (:mod:`repro.parallel.pool`).  This module
moves those large read-only ndarrays into POSIX shared memory exactly
once and replaces them with tiny fingerprint references inside the
pickled payload:

* :func:`pack_payload` pickles a payload with a custom pickler whose
  ``persistent_id`` diverts every eligible ndarray (``>=``
  :data:`MIN_SHM_BYTES`, non-object dtype) into a
  ``multiprocessing.shared_memory`` segment owned by the process-wide
  :class:`SharedArrayPack`.  Segments are addressed by the sha256
  fingerprint of their contents, so the same array shared twice --
  by a later campaign of the same sweep, say -- reuses the existing
  segment (counted in ``parallel.shm.hits``).
* Workers rebuild the payload with :func:`load_packed`: the unpickler's
  ``persistent_load`` attaches each referenced segment zero-copy (a
  read-only ndarray view over the mapped buffer) and caches the
  attachment by fingerprint, so switching from one campaign to the
  next re-ships only the small dynamic scalars.
* Cleanup is refcounted: :meth:`SharedArrayPack.release` unlinks a
  segment when its last retaining payload lets go, and an ``atexit``
  hook (:meth:`SharedArrayPack.release_all`) unlinks everything still
  live so no ``/dev/shm`` entries outlive the process.  Forked workers
  inherit the pack's bookkeeping but never own the segments -- every
  unlink path is guarded by the creating PID.

When shared memory is unavailable (no writable ``/dev/shm``, exotic
platforms) or disabled (``REPRO_NO_SHM=1``, ``--no-shm``,
:func:`set_shm_default`), arrays stay inline in the pickle stream --
same results, just a bigger broadcast (counted in
``parallel.shm.fallback``).

Determinism: a shared array is reconstructed from the exact bytes of
the original (C-contiguous copy), so worker-side values are
bit-identical to the plain-pickle path.
"""

from __future__ import annotations

import atexit
import hashlib
import io
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..obs import get_logger, get_registry, kv

_log = get_logger(__name__)

__all__ = [
    "MIN_SHM_BYTES",
    "PackedPayload",
    "SharedArrayPack",
    "ShmArrayRef",
    "array_fingerprint",
    "get_pack",
    "load_packed",
    "pack_payload",
    "set_shm_default",
    "shm_enabled",
]

#: Kill switch: set to any non-empty value to disable the shared-memory
#: plane process-wide (arrays ship inline in the pickle stream).
ENV_DISABLE = "REPRO_NO_SHM"

#: Arrays below this size ship inline: a shared-memory segment costs a
#: file descriptor, an mmap and a resource-tracker entry, which only
#: pays off for bulk data (LUT grids, packed boxes), not scalars.
MIN_SHM_BYTES = 1 << 15  # 32 KiB

#: ``persistent_id`` tag marking a diverted array in the pickle stream.
_PID_TAG = "repro.shm.array"

_DEFAULT_ENABLED = True


def array_fingerprint(array: np.ndarray) -> str:
    """Content-addressed identity of one ndarray (sha256 hex digest).

    Covers dtype, shape and the exact C-contiguous bytes -- the same
    key the shared-memory segment registry dedupes on, reused by the
    cupy backend's device upload cache so both planes agree on what
    "the same table" means.
    """
    data = np.ascontiguousarray(array)
    header = f"{data.dtype.str}|{data.shape}|".encode("ascii")
    digest = hashlib.sha256(header)
    digest.update(data.data.cast("B"))
    return digest.hexdigest()


def shm_enabled(override: Optional[bool] = None) -> bool:
    """Effective on/off state of the shared-memory plane.

    ``REPRO_NO_SHM`` beats everything (operational kill switch), an
    explicit ``override`` (CLI flag, config field) beats the module
    default set by :func:`set_shm_default`.
    """
    if os.environ.get(ENV_DISABLE):
        return False
    if override is not None:
        return bool(override)
    return _DEFAULT_ENABLED


def set_shm_default(enabled: bool) -> None:
    """Set the process-wide default used when no override is given."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable pointer to one array living in a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    fingerprint: str


class SharedArrayPack:
    """Process-wide registry of owned shared-memory segments.

    One instance per process (see :func:`get_pack`).  ``share`` is
    called from the packing pickler in the parent; workers only ever
    *attach* (see :func:`_attach`) and never unlink.
    """

    def __init__(self):
        self._owner_pid = os.getpid()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._refs: Dict[str, ShmArrayRef] = {}
        self._refcounts: Dict[str, int] = {}
        self._available: Optional[bool] = None
        self._atexit_registered = False

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> Tuple[str, ...]:
        """Names of the currently live segments (tests, leak checks)."""
        return tuple(seg.name for seg in self._segments.values())

    def total_bytes(self) -> int:
        return sum(seg.size for seg in self._segments.values())

    def available(self) -> bool:
        """Probe (once) whether shared memory works on this host."""
        if self._available is None:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                self._available = True
            except (OSError, ValueError) as exc:  # pragma: no cover
                self._available = False
                _log.warning(
                    "shared memory unavailable, payloads ship inline %s",
                    kv(error=str(exc)),
                )
        return self._available

    # -- parent side: share & release --------------------------------------

    def share(self, array: np.ndarray) -> Optional[ShmArrayRef]:
        """Move one array into a shared segment (deduplicated).

        Returns ``None`` when shared memory is unavailable or segment
        creation fails -- the caller keeps the array inline.
        """
        metrics = get_registry()
        data = np.ascontiguousarray(array)
        fingerprint = array_fingerprint(data)

        existing = self._refs.get(fingerprint)
        if existing is not None:
            self._refcounts[fingerprint] += 1
            if metrics.enabled:
                metrics.counter("parallel.shm.hits").inc()
            return existing

        if not self.available():
            if metrics.enabled:
                metrics.counter("parallel.shm.fallback").inc()
            return None
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(int(data.nbytes), 1)
            )
        except (OSError, ValueError) as exc:
            self._available = False
            if metrics.enabled:
                metrics.counter("parallel.shm.fallback").inc()
            _log.warning(
                "shared segment creation failed, array ships inline %s",
                kv(nbytes=int(data.nbytes), error=str(exc)),
            )
            return None

        dst = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
        dst[...] = data
        ref = ShmArrayRef(
            name=segment.name,
            shape=tuple(data.shape),
            dtype=data.dtype.str,
            fingerprint=fingerprint,
        )
        self._segments[fingerprint] = segment
        self._refs[fingerprint] = ref
        self._refcounts[fingerprint] = 1
        if not self._atexit_registered:
            atexit.register(self.release_all)
            self._atexit_registered = True
        if metrics.enabled:
            metrics.counter("parallel.shm.segments").inc()
            metrics.counter("parallel.shm.bytes").inc(int(data.nbytes))
            metrics.gauge("parallel.shm.active").set(len(self._segments))
        _log.debug(
            "shared segment created %s",
            kv(
                name=segment.name,
                nbytes=int(data.nbytes),
                fingerprint=fingerprint[:12],
            ),
        )
        return ref

    def _unlink(self, fingerprint: str) -> None:
        segment = self._segments.pop(fingerprint, None)
        self._refs.pop(fingerprint, None)
        self._refcounts.pop(fingerprint, None)
        if segment is None:
            return
        try:
            segment.close()
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass

    def release(self, fingerprints) -> None:
        """Drop one retain per fingerprint; unlink segments at zero.

        No-op in forked children: only the creating process may unlink
        (a worker inheriting the pack's bookkeeping must not destroy
        segments the parent still serves).
        """
        if os.getpid() != self._owner_pid:
            return
        for fingerprint in fingerprints:
            count = self._refcounts.get(fingerprint)
            if count is None:
                continue
            if count > 1:
                self._refcounts[fingerprint] = count - 1
            else:
                self._unlink(fingerprint)
        metrics = get_registry()
        if metrics.enabled:
            metrics.gauge("parallel.shm.active").set(len(self._segments))

    def release_all(self) -> None:
        """Unlink every live segment (atexit hook; PID-guarded)."""
        if os.getpid() != self._owner_pid:
            self._segments.clear()
            self._refs.clear()
            self._refcounts.clear()
            return
        for fingerprint in list(self._segments):
            self._unlink(fingerprint)
        metrics = get_registry()
        if metrics.enabled:
            metrics.gauge("parallel.shm.active").set(0)


_PACK: Optional[SharedArrayPack] = None


def get_pack() -> SharedArrayPack:
    """The process-wide :class:`SharedArrayPack` (created lazily)."""
    global _PACK
    if _PACK is None or _PACK._owner_pid != os.getpid():
        # a forked child must never reuse (and later unlink) the
        # parent's bookkeeping -- it gets its own empty pack.
        _PACK = SharedArrayPack()
    return _PACK


# -- payload packing (parent side) ------------------------------------------


@dataclass(frozen=True)
class PackedPayload:
    """A payload pre-pickled once and shipped per task.

    ``data`` is the pickle stream with large arrays replaced by
    :class:`ShmArrayRef` persistent ids; when the stream itself is
    bulky (interpolator caches, many small grids) it moves into a
    segment of its own and ``data`` is ``None`` with ``blob_ref``
    pointing at the stream bytes -- per-task IPC then carries only
    references.  ``fingerprint`` keys the worker-side payload cache;
    ``shm_fingerprints`` are the segments this payload retains (for
    :meth:`SharedArrayPack.release`).

    Callers that fan out the same payload across many maps (e.g.
    :class:`~repro.core.flow.SerFlow`) can pack once and pass the
    ``PackedPayload`` itself as ``parallel_map``'s ``payload`` -- the
    engine ships it as-is instead of re-packing per map.
    """

    data: Optional[bytes]
    fingerprint: str
    shm_fingerprints: Tuple[str, ...]
    blob_ref: Optional[ShmArrayRef] = None

    @property
    def nbytes(self) -> int:
        """Inline pickle bytes shipped per task (0 when in a segment)."""
        return len(self.data) if self.data is not None else 0


class _PackingPickler(pickle.Pickler):
    """Pickler diverting large ndarrays into the shared-array pack."""

    def __init__(self, file, pack: SharedArrayPack, use_shm: bool):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._pack = pack
        self._use_shm = use_shm
        self.shared: Dict[str, ShmArrayRef] = {}

    def persistent_id(self, obj):
        if (
            self._use_shm
            and type(obj) is np.ndarray
            and obj.nbytes >= MIN_SHM_BYTES
            and not obj.dtype.hasobject
        ):
            ref = self._pack.share(obj)
            if ref is not None:
                self.shared[ref.fingerprint] = ref
                return (_PID_TAG, ref)
        return None


def pack_payload(payload: Any, *, use_shm: bool = True) -> PackedPayload:
    """Serialize a payload once, diverting bulk arrays into shm.

    The returned :class:`PackedPayload` is small (references instead of
    array bytes) and cheap to ship with every task of a warm pool; the
    pack retains one reference per distinct shared array.
    """
    pack = get_pack()
    effective = use_shm and shm_enabled()
    buffer = io.BytesIO()
    pickler = _PackingPickler(buffer, pack, effective)
    pickler.dump(payload)
    data: Optional[bytes] = buffer.getvalue()
    fingerprint = hashlib.sha256(data).hexdigest()
    blob_ref = None
    if effective and len(data) >= MIN_SHM_BYTES:
        # the pickle stream itself is bulky (interpolator caches, many
        # sub-threshold grids): park it in a segment too, so per-task
        # IPC carries references only.
        blob_ref = pack.share(np.frombuffer(data, dtype=np.uint8))
        if blob_ref is not None:
            pickler.shared[blob_ref.fingerprint] = blob_ref
            data = None
    return PackedPayload(
        data=data,
        fingerprint=fingerprint,
        shm_fingerprints=tuple(sorted(pickler.shared)),
        blob_ref=blob_ref,
    )


def release_packed(packed: PackedPayload) -> None:
    """Release the segments a packed payload retains."""
    get_pack().release(packed.shm_fingerprints)


# -- worker side: attach & cache --------------------------------------------

#: Fingerprint -> (segment, read-only array view).  Lives for the
#: worker's whole life: a warm worker keeps serving campaigns against
#: the same static inputs without remapping them.
_ATTACHMENTS: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Payload-fingerprint -> rebuilt payload object, so a warm worker
#: unpickles each distinct payload once and switching campaigns back
#: and forth stays cheap.  Bounded: payloads can hold large inline
#: state when shm is off.
_PAYLOAD_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_PAYLOAD_CACHE_MAX = 4


def _attach(ref: ShmArrayRef) -> np.ndarray:
    """Attach (or reuse) the shared array behind a reference."""
    cached = _ATTACHMENTS.get(ref.fingerprint)
    metrics = get_registry()
    if cached is not None:
        if metrics.enabled:
            metrics.counter("parallel.shm.attach_hits").inc()
        return cached[1]
    segment = shared_memory.SharedMemory(name=ref.name)
    array = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    _ATTACHMENTS[ref.fingerprint] = (segment, array)
    if metrics.enabled:
        metrics.counter("parallel.shm.attach").inc()
    return array


class _AttachingUnpickler(pickle.Unpickler):
    """Unpickler resolving :class:`ShmArrayRef` persistent ids."""

    def persistent_load(self, pid):
        try:
            tag, ref = pid
        except (TypeError, ValueError):
            tag, ref = None, None
        if tag != _PID_TAG or not isinstance(ref, ShmArrayRef):
            raise pickle.UnpicklingError(
                f"unsupported persistent id {pid!r}"
            )
        return _attach(ref)


def load_packed(packed: PackedPayload) -> Any:
    """Rebuild a packed payload (worker side), cached by fingerprint."""
    cached = packed.fingerprint in _PAYLOAD_CACHE
    if cached:
        _PAYLOAD_CACHE.move_to_end(packed.fingerprint)
        metrics = get_registry()
        if metrics.enabled:
            metrics.counter("parallel.shm.payload_hits").inc()
        return _PAYLOAD_CACHE[packed.fingerprint]
    if packed.data is not None:
        stream = packed.data
    else:
        stream = _attach(packed.blob_ref).tobytes()
    payload = _AttachingUnpickler(io.BytesIO(stream)).load()
    _PAYLOAD_CACHE[packed.fingerprint] = payload
    while len(_PAYLOAD_CACHE) > _PAYLOAD_CACHE_MAX:
        _PAYLOAD_CACHE.popitem(last=False)
    return payload
