"""Tracing spans: nested wall-time measurement streamed to JSONL.

A span brackets one stage of the flow::

    from repro.obs import span

    with span("array-mc", particle="alpha", energy_mev=2.0):
        ...

Spans nest (a thread-local stack tracks the active parent), record
wall time, mirror their duration into the metrics registry as a
``stage.<name>`` timer, and — when a trace file is configured with
:func:`configure_tracing` — append one JSON line per *completed* span:

``{"type": "span", "id": 3, "parent": 1, "depth": 1, "name": "...",``
``"t_start": <unix s>, "dur_s": <float>, "status": "ok", "attrs": {...}}``

Lines appear in completion order (children before their parent); the
``id``/``parent``/``depth`` fields let a reader rebuild the tree.

When neither tracing nor metrics are enabled, :func:`span` returns a
shared no-op context manager — two global reads, no allocation — so
instrumented hot paths cost nothing in the disabled state.

Durability: the trace file is a :class:`~repro.obs.jsonl.JsonlWriter`
— every span is one unbuffered ``O_APPEND`` write, so worker crashes
and ``os._exit``-style kills (the fault-injection hook, OOM kills)
never leave half-flushed span buffers behind, forked pool workers
append whole lines without tearing the parent's, and the file rotates
to ``<path>.1`` past ``max_bytes`` instead of growing unboundedly.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Optional

from .jsonl import DEFAULT_MAX_BYTES, JsonlWriter
from .registry import get_registry

__all__ = [
    "span",
    "Span",
    "TraceWriter",
    "configure_tracing",
    "reset_tracing",
    "tracing_enabled",
    "current_span",
]

_writer: Optional["TraceWriter"] = None
_ids = itertools.count(1)
_local = threading.local()


class TraceWriter(JsonlWriter):
    """Crash-safe, rotating JSONL sink for completed spans."""

    def __init__(self, path, max_bytes: Optional[int] = DEFAULT_MAX_BYTES):
        super().__init__(
            path,
            header={"type": "trace", "format": 1},
            max_bytes=max_bytes,
        )


def configure_tracing(
    path, max_bytes: Optional[int] = DEFAULT_MAX_BYTES
) -> TraceWriter:
    """Stream all subsequent spans to a JSONL file at ``path``."""
    global _writer
    if _writer is not None:
        _writer.close()
    _writer = TraceWriter(path, max_bytes=max_bytes)
    return _writer


def reset_tracing():
    """Stop tracing and close the trace file (no-op when off)."""
    global _writer
    if _writer is not None:
        _writer.close()
        _writer = None


def tracing_enabled() -> bool:
    return _writer is not None


def _stack():
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span of this thread (None outside spans)."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One live stage measurement; use via :func:`span`."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "t_start",
        "_perf0",
        "duration_s",
    )

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id = None
        self.depth = 0
        self.t_start = 0.0
        self.duration_s = None

    def __enter__(self):
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = stack[-1].depth + 1
        stack.append(self)
        self.t_start = time.time()
        self._perf0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration_s = time.perf_counter() - self._perf0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        registry = get_registry()
        if registry.enabled:
            registry.timer(f"stage.{self.name}").observe(self.duration_s)
        if _writer is not None:
            _writer.write(
                {
                    "type": "span",
                    "id": self.span_id,
                    "parent": self.parent_id,
                    "depth": self.depth,
                    "name": self.name,
                    "t_start": self.t_start,
                    "dur_s": self.duration_s,
                    "status": "error" if exc_type is not None else "ok",
                    "attrs": self.attrs,
                }
            )
        return False


class _NullSpan:
    """Shared no-op span for the disabled state."""

    __slots__ = ()
    name = "null"
    duration_s = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A context manager timing one named stage (no-op when disabled)."""
    if _writer is None and not get_registry().enabled:
        return _NULL_SPAN
    return Span(name, attrs)
