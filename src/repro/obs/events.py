"""Streaming telemetry events: the live view into a running campaign.

Metrics (:mod:`repro.obs.registry`) are *aggregates* merged after a
parallel round completes; traces (:mod:`repro.obs.trace`) record spans
only once they *finish*.  Neither answers "how far along is the sweep
*right now*?" — the question both the SER-service daemon and adaptive
sampling need answered.  This module adds the third leg: a stream of
small, typed, strictly-ordered events emitted *while* campaigns run,
mirroring the event-wise (rather than end-of-run aggregate) SER
measurement methodology of the 55-nm error-scanning chip line.

Event kinds
-----------
* ``round`` — a :func:`~repro.parallel.parallel_map` fan-out started
  or ended (label, execution path, task/worker counts).
* ``progress`` — one shard changed state: ``started`` / ``finished``
  (emitted **inside the worker process**, shipped over a
  ``multiprocessing`` queue), ``retrying`` / ``lost`` (parent side).
* ``heartbeat`` — periodic liveness while a pooled round is in
  flight: done/total, elapsed, ETA.  A silent stream means a stalled
  run; ``repro-ser obs tail`` turns that into stall warnings.
* ``convergence`` — one (stage, particle, Vdd, energy) bin's trial
  count and POF standard error (see :mod:`repro.obs.convergence`).
* ``allocation`` — one adaptive-campaign round's draw-block
  allocation: which bins got blocks, trials assigned, bins converged
  so far (see :mod:`repro.ser.adaptive`).

Every event is a flat JSON-safe dict stamped by the parent-process
:class:`EventBus` with a monotonically increasing ``seq`` — the total
order consumers rely on — plus the bus wall-clock ``t``.  Worker-side
events carry their own ``t_worker`` and ``pid``.

Consumers
---------
:func:`configure_events` opens a crash-safe, size-rotated JSONL sink
(:class:`~repro.obs.jsonl.JsonlWriter`) and/or a bounded in-memory
:class:`EventRing` for programmatic consumers (the future daemon's
admission controller, tests, notebooks).  Like the rest of
:mod:`repro.obs`, everything is **disabled by default and zero-cost
in that state**: :func:`events_enabled` is one global read, and no
queues are drained, no lines written, no dicts built.

Pool workers never own a bus of their own — :func:`disable_events`
is called in every worker initializer, and worker emissions travel
through the engine's event queue to be sequenced by the parent.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Union

from .jsonl import DEFAULT_MAX_BYTES, JsonlWriter
from .log import get_logger, kv

_log = get_logger(__name__)

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "EventRing",
    "configure_events",
    "disable_events",
    "emit_event",
    "events_enabled",
    "get_event_bus",
    "DEFAULT_RING_SIZE",
    "DEFAULT_HEARTBEAT_S",
]

EVENT_KINDS = ("round", "progress", "heartbeat", "convergence", "allocation")

#: Default capacity of the in-memory ring.
DEFAULT_RING_SIZE = 4096

#: Default heartbeat period [s] while a pooled round is in flight.
DEFAULT_HEARTBEAT_S = 1.0


class EventRing:
    """Bounded, thread-safe ring of the most recent events.

    The programmatic consumption surface: a live reader (the daemon's
    scheduler, a test, a notebook) snapshots the ring instead of
    tailing the JSONL file.  Old events fall off the far end — the
    ring can never grow a long campaign out of memory.
    """

    def __init__(self, capacity: int = DEFAULT_RING_SIZE):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._events: Deque[dict] = deque(maxlen=self.capacity)
        self.total = 0  # events ever appended, including evicted ones

    def append(self, event: dict):
        with self._lock:
            self._events.append(event)
            self.total += 1

    def snapshot(self, kind: Optional[str] = None) -> List[dict]:
        """The retained events in order, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class EventBus:
    """Parent-process event hub: stamps order, fans out to sinks.

    ``emit`` is the only write path; it assigns the global ``seq``
    under a lock (events from the queue-drainer thread and the main
    thread interleave), stamps the wall clock, and forwards to the
    JSONL sink and/or ring.  Emission must never break the science:
    sink errors are swallowed after disabling the sink.
    """

    def __init__(
        self,
        path=None,
        ring: Optional[int] = DEFAULT_RING_SIZE,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ):
        if path is None and ring is None:
            raise ValueError("need a JSONL path, a ring, or both")
        if heartbeat_s <= 0:
            raise ValueError("heartbeat period must be positive")
        self.writer = (
            JsonlWriter(
                path,
                header={"type": "events", "format": 1},
                max_bytes=max_bytes,
            )
            if path is not None
            else None
        )
        self.ring = EventRing(ring) if ring is not None else None
        self.heartbeat_s = float(heartbeat_s)
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()
        #: Events that could not reach the JSONL sink (sink died).
        self.dropped = 0

    @property
    def path(self) -> Optional[str]:
        return self.writer.path if self.writer is not None else None

    def emit(self, kind: str, **fields) -> dict:
        """Stamp and publish one event; returns the stamped dict."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = {"type": "event", "kind": kind}
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event["t"] = time.time()
        if self.ring is not None:
            self.ring.append(event)
        if self.writer is not None:
            try:
                self.writer.write(event)
            except OSError as exc:  # telemetry must never sink the campaign
                # drop the sink for good: a dead writer stays dead, so
                # later emits must not re-serialize and re-fail (and
                # ``bus.path`` must stop advertising a sink that no
                # longer exists).  The ring keeps working.
                path = self.writer.path
                self.writer.close()
                self.writer = None
                self.dropped += 1
                self._count_drop()
                _log.warning(
                    "event sink lost, dropping further events %s",
                    kv(path=path, error=exc),
                )
        elif self.dropped:
            # sink already declared dead: count, never retry.
            self.dropped += 1
            self._count_drop()
        return event

    @staticmethod
    def _count_drop():
        from .registry import get_registry

        get_registry().counter("events.dropped").inc()

    def emit_raw(self, event: dict) -> dict:
        """Publish a worker-originated event dict (stamped here)."""
        fields = {k: v for k, v in event.items() if k not in ("type", "kind")}
        return self.emit(event.get("kind", "progress"), **fields)

    def close(self):
        if self.writer is not None:
            self.writer.close()


_BUS: Optional[EventBus] = None


def _reset_bus_lock_after_fork():
    # a child forked while a parent thread held the seq lock would
    # deadlock on its first emit; the lock is per-process, so a fresh
    # one is always correct (the writer's own lock is re-armed by
    # :mod:`repro.obs.jsonl`).
    if _BUS is not None:
        _BUS._lock = threading.Lock()


os.register_at_fork(after_in_child=_reset_bus_lock_after_fork)


def configure_events(
    path=None,
    ring: Optional[int] = DEFAULT_RING_SIZE,
    max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> EventBus:
    """Install the process-wide :class:`EventBus` (replacing any)."""
    global _BUS
    if _BUS is not None:
        _BUS.close()
    _BUS = EventBus(
        path=path, ring=ring, max_bytes=max_bytes, heartbeat_s=heartbeat_s
    )
    return _BUS


def disable_events():
    """Tear the bus down; emission reverts to the zero-cost no-op."""
    global _BUS
    if _BUS is not None:
        _BUS.close()
        _BUS = None


def get_event_bus() -> Optional[EventBus]:
    """The live bus, or ``None`` when telemetry is off (the default)."""
    return _BUS


def events_enabled() -> bool:
    return _BUS is not None


def emit_event(kind: str, **fields) -> Optional[dict]:
    """Emit one event through the live bus (no-op when disabled)."""
    bus = _BUS
    if bus is None:
        return None
    return bus.emit(kind, **fields)
