"""Per-bin convergence telemetry: trial counts and POF standard errors.

Every Monte Carlo stage of the flow estimates a proportion — the
array-level POF of an energy bin, the fin-crossing fraction of a
yield-LUT energy point, the variation-MC POF of a characterization
grid — and the question that drives both campaign sizing and the
planned adaptive sampler is the same for all of them: *how converged
is each bin right now?*  This module is the one funnel those stages
report through:

:func:`record_bin` folds one bin observation into

* the metrics registry — a ``convergence.<stage>.<bin>`` **gauge**
  (last/worst standard error per bin, lifted into the manifest), a
  shared ``convergence.pof_se`` **histogram** whose bucket-interpolated
  p50/p99 summarize the whole run, and a ``convergence.trials.<stage>``
  counter;
* the event stream — one ``convergence`` event per bin, so a live
  consumer (``repro-ser obs tail``, the future adaptive controller)
  sees convergence *as bins complete*, not at exit; and
* the process-wide :class:`ConvergenceTracker`, the programmatic
  surface: per-bin state plus p50/p99 over everything recorded.

:func:`binomial_standard_error` is the shared conservative estimator
(``sqrt(p (1 - p) / n)``); it lives here, at the bottom of the
dependency tree, so :mod:`repro.ser`/:mod:`repro.transport` can record
bins without importing the analysis layer.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from .events import emit_event, events_enabled
from .registry import _exact_quantile, get_registry

__all__ = [
    "BinState",
    "ConvergenceTracker",
    "binomial_standard_error",
    "convergence_active",
    "get_convergence_tracker",
    "record_bin",
    "reset_convergence",
]

#: Histogram edges tuned for POF standard errors (dimensionless,
#: typically 1e-5 .. 1e-1 at laptop trial counts).
SE_EDGES = (1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)


def binomial_standard_error(p: float, n: int) -> float:
    """Conservative standard error of a proportion estimate.

    The binomial bound ``sqrt(p (1 - p) / n)`` — slightly pessimistic
    for our per-event *fractional* failure probabilities, which is the
    right direction for a convergence criterion.
    """
    if n < 1:
        raise ValueError("need at least one trial")
    p = min(max(float(p), 0.0), 1.0)
    return math.sqrt(p * (1.0 - p) / n)


class BinState:
    """Running convergence state of one (stage, particle, vdd, energy) bin."""

    __slots__ = ("key", "trials", "pof", "standard_error", "updates")

    def __init__(self, key: str):
        self.key = key
        self.trials = 0
        self.pof = 0.0
        self.standard_error = math.inf
        self.updates = 0

    def update(self, trials: int, pof: float, standard_error: float):
        self.trials += int(trials)
        self.pof = float(pof)
        self.standard_error = float(standard_error)
        self.updates += 1

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "trials": self.trials,
            "pof": self.pof,
            "standard_error": self.standard_error,
            "updates": self.updates,
        }


class ConvergenceTracker:
    """Process-wide per-bin convergence state with quantile support.

    The programmatic consumer surface: the manifest and the (future)
    adaptive campaign controller read per-bin standard errors here
    instead of parsing gauge names back apart.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._bins: Dict[str, BinState] = {}

    def update(
        self, key: str, trials: int, pof: float, standard_error: float
    ) -> BinState:
        with self._lock:
            state = self._bins.get(key)
            if state is None:
                state = self._bins[key] = BinState(key)
            state.update(trials, pof, standard_error)
            return state

    def bins(self, stage: Optional[str] = None) -> Dict[str, BinState]:
        """Per-bin states, optionally restricted to one stage prefix."""
        with self._lock:
            items = dict(self._bins)
        if stage is not None:
            prefix = f"{stage}."
            items = {k: v for k, v in items.items() if k.startswith(prefix)}
        return items

    def standard_errors(self, stage: Optional[str] = None) -> List[float]:
        return [
            state.standard_error
            for state in self.bins(stage).values()
            if math.isfinite(state.standard_error)
        ]

    def quantile(self, q: float, stage: Optional[str] = None) -> float:
        """Exact quantile over the current per-bin standard errors."""
        return _exact_quantile(self.standard_errors(stage), q)

    def worst(self, stage: Optional[str] = None) -> Tuple[Optional[str], float]:
        """The least-converged bin: ``(key, standard error)``."""
        worst_key, worst_se = None, 0.0
        for key, state in self.bins(stage).items():
            if (
                math.isfinite(state.standard_error)
                and state.standard_error >= worst_se
            ):
                worst_key, worst_se = key, state.standard_error
        return worst_key, worst_se

    def summary(self) -> dict:
        """JSON-safe digest (manifest ``convergence_bins`` section)."""
        bins = self.bins()
        worst_key, worst_se = self.worst()
        return {
            "bins": len(bins),
            "total_trials": sum(s.trials for s in bins.values()),
            "p50_se": self.quantile(0.5),
            "p99_se": self.quantile(0.99),
            "worst_bin": worst_key,
            "worst_se": worst_se,
        }

    def reset(self):
        with self._lock:
            self._bins.clear()


_TRACKER = ConvergenceTracker()


def get_convergence_tracker() -> ConvergenceTracker:
    """The process-wide tracker (always available; cheap when idle)."""
    return _TRACKER


def reset_convergence():
    """Drop all per-bin state (a fresh run starts clean)."""
    _TRACKER.reset()


def convergence_active() -> bool:
    """Whether recording a bin would reach any consumer right now."""
    return get_registry().enabled or events_enabled()


def bin_key(
    stage: str,
    particle: Optional[str] = None,
    vdd_v: Optional[float] = None,
    energy_mev: Optional[float] = None,
) -> str:
    parts = [stage]
    if particle is not None:
        parts.append(str(particle))
    if vdd_v is not None:
        parts.append(f"vdd={float(vdd_v):g}")
    if energy_mev is not None:
        parts.append(f"e={float(energy_mev):.6g}")
    return ".".join(parts)


def record_bin(
    stage: str,
    *,
    trials: int,
    pof: float,
    standard_error: Optional[float] = None,
    particle: Optional[str] = None,
    vdd_v: Optional[float] = None,
    energy_mev: Optional[float] = None,
) -> Optional[BinState]:
    """Fold one bin observation into gauges, histogram, event, tracker.

    No-op (and allocation-free) unless metrics or events are enabled,
    so instrumented MC stages cost nothing in the library-default
    disabled state.  ``standard_error`` defaults to the binomial bound
    of ``(pof, trials)``.
    """
    if not convergence_active():
        return None
    if standard_error is None:
        standard_error = binomial_standard_error(pof, trials)
    key = bin_key(stage, particle, vdd_v, energy_mev)
    state = _TRACKER.update(key, trials, pof, standard_error)

    metrics = get_registry()
    if metrics.enabled:
        metrics.gauge(f"convergence.{key}").set(standard_error)
        metrics.counter(f"convergence.trials.{stage}").inc(int(trials))
        # nan means "SE unknown" (zero-hit / degraded bins) -- a real
        # observation would corrupt the histogram's quantiles
        if math.isfinite(standard_error):
            metrics.histogram("convergence.pof_se", SE_EDGES).observe(
                standard_error
            )
    emit_event(
        "convergence",
        stage=stage,
        bin=key,
        particle=particle,
        vdd_v=vdd_v,
        energy_mev=energy_mev,
        trials=int(trials),
        pof=float(pof),
        pof_standard_error=float(standard_error),
        cumulative_trials=state.trials,
    )
    return state
