"""Inspection toolkit behind the ``repro-ser obs`` subcommands.

Everything the live telemetry plane writes -- event streams
(:mod:`repro.obs.events`), span traces (:mod:`repro.obs.trace`), run
manifests (:mod:`repro.obs.manifest`), and the committed ``BENCH_*``
performance trajectories -- is JSON on disk; this module turns those
files back into human-readable answers:

* :func:`tail_events` / :func:`follow_events` -- render an event
  stream (optionally live, tailing a file another process is still
  appending to), surfacing heartbeat ETAs and flagging stalls.
* :func:`summarize_trace` / :func:`summarize_events` /
  :func:`summarize_manifest` -- fold a telemetry file into per-span
  p50/p99 wall-time tables and per-label round/shard digests.
* :func:`diff_manifests` -- field-by-field comparison of two run
  manifests: stage timings, MC trial counts, execution-plane
  environment, convergence.
* :func:`bench_check` -- regression-gate the most recent entry of a
  ``BENCH_*.json`` trajectory against the best of its history.

All functions are pure (paths in, structured data + rendered text
out) so tests can drive them without a subprocess; the CLI layer in
:mod:`repro.cli` only parses arguments and prints.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from .jsonl import read_jsonl
from .registry import _exact_quantile

__all__ = [
    "bench_check",
    "diff_manifests",
    "follow_events",
    "format_event",
    "read_event_chain",
    "render_table",
    "summarize_events",
    "summarize_manifest",
    "summarize_trace",
    "tail_events",
]

#: Follow mode flags a stall when no event arrives for this long [s].
DEFAULT_STALL_S = 10.0


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def format_event(event: dict, t0: Optional[float] = None) -> str:
    """One human-readable line for one telemetry event."""
    seq = event.get("seq", "?")
    t = event.get("t")
    rel = f"+{t - t0:8.3f}s" if t is not None and t0 is not None else " " * 10
    kind = event.get("kind", "?")
    label = event.get("label", event.get("stage", ""))
    if kind == "round":
        body = (
            f"{label} {event.get('phase', '?')}"
            f" path={event.get('path', '?')}"
            f" tasks={event.get('tasks', '?')}"
        )
        if event.get("phase") == "start":
            body += f" workers={event.get('workers', '?')}"
        else:
            body += (
                f" lost={event.get('lost', 0)}"
                f" wall={_fmt_seconds(event.get('wall_s'))}"
            )
    elif kind == "progress":
        body = f"{label}[{event.get('index', '?')}] {event.get('state', '?')}"
        if event.get("pid") is not None:
            body += f" pid={event['pid']}"
        if event.get("busy_s") is not None:
            body += f" busy={_fmt_seconds(event['busy_s'])}"
        if event.get("attempt") is not None:
            body += f" attempt={event['attempt']}/{event.get('retries', '?')}"
    elif kind == "heartbeat":
        body = (
            f"{label} {event.get('done', '?')}/{event.get('total', '?')}"
            f" elapsed={_fmt_seconds(event.get('elapsed_s'))}"
            f" eta={_fmt_seconds(event.get('eta_s'))}"
        )
        if event.get("final"):
            body += " final"
    elif kind == "convergence":
        body = f"{event.get('bin', label)} pof={event.get('pof', 0.0):.3g}"
        se = event.get("pof_standard_error")
        if se is not None:
            body += f" se={se:.3g}"
        body += f" trials={event.get('trials', '?')}"
    elif kind == "allocation":
        bins = event.get("bins") or {}
        body = (
            f"{label} round={event.get('round', '?')}"
            f" blocks={event.get('blocks', '?')}"
            f" trials={event.get('trials', '?')}"
            f" bins={len(bins)}"
            f" converged={event.get('converged', '?')}"
        )
    else:
        body = json.dumps(
            {k: v for k, v in event.items() if k not in ("type", "seq", "t")},
            sort_keys=True,
        )
    return f"#{seq:>5} {rel} {kind:<11} {body}"


def read_event_chain(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """Read a possibly-rotated event stream: ``<path>.1`` + ``<path>``.

    The :class:`~repro.obs.jsonl.JsonlWriter` rotates the live file to
    ``<path>.1`` at the size cap, so the full stream of a long campaign
    is the concatenation of the rotated generation (older events) and
    the live file.  One-shot readers that look only at ``<path>``
    silently drop the rotated prefix; this helper stitches the chain
    back together, deduplicating on the bus ``seq`` (a reader can race
    the rotation and see the same event in both generations) and
    keeping the total order.  Returns ``(records, invalid)`` like
    :func:`~repro.obs.jsonl.read_jsonl`; non-event records (headers)
    pass through undeduplicated.
    """
    path = str(path)
    records: List[dict] = []
    invalid = 0
    seen_seq = set()
    for part in (path + ".1", path):
        if not os.path.exists(part):
            continue
        part_records, part_invalid = read_jsonl(part)
        invalid += part_invalid
        for record in part_records:
            if record.get("type") == "event":
                seq = record.get("seq")
                if seq is not None:
                    if seq in seen_seq:
                        continue
                    seen_seq.add(seq)
            records.append(record)
    return records, invalid


def tail_events(
    path: Union[str, Path], last: Optional[int] = None
) -> Tuple[List[str], dict]:
    """Render an event file; returns ``(lines, stats)``.

    Reads the full rotation chain (``<path>.1`` then ``<path>``) so a
    stream that rotated mid-campaign is rendered whole.  ``last``
    keeps only the trailing N events (like ``tail -n``).  ``stats``
    carries the per-kind counts and the invalid-line count of the
    tolerant reader.
    """
    records, invalid = read_event_chain(path)
    events = [r for r in records if r.get("type") == "event"]
    t0 = events[0].get("t") if events else None
    if last is not None and last >= 0:
        events = events[-last:]
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.get("kind", "?")] = counts.get(event.get("kind", "?"), 0) + 1
    lines = [format_event(e, t0) for e in events]
    return lines, {"events": len(events), "kinds": counts, "invalid": invalid}


def follow_events(
    path: Union[str, Path],
    poll_s: float = 0.2,
    idle_timeout_s: Optional[float] = None,
    stall_after_s: float = DEFAULT_STALL_S,
    stop: Optional[Callable[[], bool]] = None,
    _clock=time.monotonic,
    _sleep=time.sleep,
) -> Iterator[str]:
    """Live-tail a growing event file, yielding rendered lines.

    Reads incrementally (tolerating a torn final line that a writer is
    still appending), yields one formatted line per complete event,
    and interleaves ``!! stalled`` warning lines when no event arrives
    for ``stall_after_s`` -- the silent-stream signal documented in
    :mod:`repro.obs.events`.  Stops when ``stop()`` returns true or
    when nothing arrived for ``idle_timeout_s`` (``None`` = follow
    forever).
    """
    state = {"t0": None, "fresh": False, "last_event": _clock()}
    buffer = b""
    offset = 0
    inode: Optional[int] = None
    stalled = False

    def parse(chunk: bytes):
        nonlocal buffer
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            try:
                event = json.loads(line.decode("utf-8", errors="replace"))
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict) or event.get("type") != "event":
                continue
            if state["t0"] is None:
                state["t0"] = event.get("t")
            state["last_event"] = _clock()
            state["fresh"] = True
            yield format_event(event, state["t0"])

    def read_from(source, start: int) -> bytes:
        try:
            with open(source, "rb") as handle:
                handle.seek(start)
                return handle.read()
        except OSError:
            return b""

    while True:
        if stop is not None and stop():
            return
        try:
            st = os.stat(path)
            size, ino = st.st_size, st.st_ino
        except OSError:
            size, ino = 0, inode
        if inode is None:
            inode = ino
        if ino != inode:
            # Rotated under us: the handle we were reading now lives at
            # <path>.1.  Size comparison alone misses this whenever the
            # fresh file grows past our old offset between polls, so
            # the inode is the rotation signal.  Drain the tail of the
            # rotated generation first — no events are skipped across
            # the boundary — then start over on the fresh file.
            yield from parse(read_from(str(path) + ".1", offset))
            if buffer:  # torn tail of the rotated file: nothing follows it
                buffer = b""
            inode = ino
            offset = 0
        elif size < offset:  # truncated in place: start over
            offset = 0
            buffer = b""
        if size > offset:
            chunk = read_from(path, offset)
            offset += len(chunk)
            yield from parse(chunk)
        if state["fresh"]:
            state["fresh"] = False
            stalled = False
        idle = _clock() - state["last_event"]
        if not stalled and idle >= stall_after_s:
            stalled = True
            yield (
                f"!! stalled: no events for {idle:.1f}s "
                f"(heartbeats should arrive every ~1s while a round runs)"
            )
        if idle_timeout_s is not None and idle >= idle_timeout_s:
            return
        _sleep(poll_s)


def render_table(
    headers: List[str], rows: List[List[str]], indent: str = "  "
) -> str:
    """Plain-text column-aligned table (no external deps)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return indent + "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def summarize_trace(path: Union[str, Path]) -> dict:
    """Per-span-name wall-time digest of a JSONL trace file.

    Returns ``{"spans": {name: {count, total_s, p50_s, p99_s, max_s}},
    "invalid": n}`` -- the quantiles are exact over the file (the
    trace keeps every completed span, unlike the registry's bounded
    timer samples).
    """
    records, invalid = read_jsonl(path)
    durations: Dict[str, List[float]] = {}
    for record in records:
        if record.get("type") != "span" or record.get("dur_s") is None:
            continue
        durations.setdefault(record["name"], []).append(float(record["dur_s"]))
    spans = {
        name: {
            "count": len(values),
            "total_s": sum(values),
            "p50_s": _exact_quantile(values, 0.5),
            "p99_s": _exact_quantile(values, 0.99),
            "max_s": max(values),
        }
        for name, values in sorted(durations.items())
    }
    return {"spans": spans, "invalid": invalid}


def summarize_events(path: Union[str, Path]) -> dict:
    """Per-label round/shard digest plus convergence tail of an event file.

    Reads the rotation chain (see :func:`read_event_chain`), so long
    campaigns whose streams rotated report full round/trial counts.
    """
    records, invalid = read_event_chain(path)
    labels: Dict[str, dict] = {}
    convergence: Dict[str, dict] = {}
    counts: Dict[str, int] = {}
    for event in records:
        if event.get("type") != "event":
            continue
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "convergence":
            convergence[event.get("bin", "?")] = {
                "trials": event.get("cumulative_trials", event.get("trials")),
                "pof": event.get("pof"),
                "standard_error": event.get("pof_standard_error"),
            }
            continue
        label = event.get("label")
        if label is None:
            continue
        stats = labels.setdefault(
            label,
            {
                "rounds": 0,
                "tasks": 0,
                "finished": 0,
                "retried": 0,
                "lost": 0,
                "wall_s": 0.0,
                "busy": [],
            },
        )
        if kind == "round":
            if event.get("phase") == "start":
                stats["rounds"] += 1
                stats["tasks"] += int(event.get("tasks", 0))
            else:
                stats["wall_s"] += float(event.get("wall_s") or 0.0)
        elif kind == "progress":
            state = event.get("state")
            if state == "finished":
                stats["finished"] += 1
                if event.get("busy_s") is not None:
                    stats["busy"].append(float(event["busy_s"]))
            elif state == "retrying":
                stats["retried"] += 1
            elif state == "lost":
                stats["lost"] += 1
    for stats in labels.values():
        busy = stats.pop("busy")
        stats["busy_p50_s"] = _exact_quantile(busy, 0.5)
        stats["busy_p99_s"] = _exact_quantile(busy, 0.99)
    errors = [
        state["standard_error"]
        for state in convergence.values()
        if state.get("standard_error") is not None
    ]
    worst_bin, worst_se = None, 0.0
    for key, state in convergence.items():
        se = state.get("standard_error")
        if se is not None and math.isfinite(se) and se >= worst_se:
            worst_bin, worst_se = key, se
    return {
        "kinds": counts,
        "labels": labels,
        "convergence": {
            "bins": len(convergence),
            "p50_se": _exact_quantile(errors, 0.5),
            "p99_se": _exact_quantile(errors, 0.99),
            "worst_bin": worst_bin,
            "worst_se": worst_se,
        },
        "invalid": invalid,
    }


def summarize_manifest(path: Union[str, Path]) -> dict:
    """Span p50/p99 table data straight from a run manifest's timers."""
    from .manifest import RunManifest

    manifest = RunManifest.load(path)
    spans = {
        name: {
            "count": stats.get("count", 0),
            "total_s": stats.get("total_s", 0.0),
            "p50_s": stats.get("p50_s", 0.0),
            "p99_s": stats.get("p99_s", 0.0),
            "max_s": stats.get("max_s", 0.0),
        }
        for name, stats in sorted(manifest.stage_timings_s.items())
    }
    return {
        "command": manifest.command,
        "duration_s": manifest.duration_s,
        "spans": spans,
        "convergence_bins": manifest.convergence_bins,
        "environment": manifest.environment,
    }


def render_span_table(spans: Dict[str, dict]) -> str:
    rows = [
        [
            name,
            str(stats["count"]),
            _fmt_seconds(stats["total_s"]),
            _fmt_seconds(stats["p50_s"]),
            _fmt_seconds(stats["p99_s"]),
            _fmt_seconds(stats["max_s"]),
        ]
        for name, stats in spans.items()
    ]
    return render_table(
        ["span", "count", "total", "p50", "p99", "max"], rows
    )


def _flatten(prefix: str, value, out: Dict[str, object]):
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = value


def diff_manifests(
    path_a: Union[str, Path], path_b: Union[str, Path]
) -> Tuple[List[Tuple[str, object, object]], dict]:
    """Field-level differences between two run manifests.

    Compares the human-facing sections (config, environment, stage
    timings, MC counts, convergence digest) -- not the raw ``metrics``
    snapshot, whose per-label keys differ run to run by construction.
    Returns ``(diffs, meta)`` where each diff is ``(dotted_key,
    value_a, value_b)``; numeric near-equality (0.1% relative) is not
    reported, so bit-identical reruns on the same host diff clean
    except for wall times.
    """
    from .manifest import RunManifest

    a = RunManifest.load(path_a)
    b = RunManifest.load(path_b)
    sections = (
        "config",
        "environment",
        "stage_timings_s",
        "mc",
        "lut_cache",
        "convergence",
        "convergence_bins",
        "fault_tolerance",
        "parallel",
        "adaptive",
        "service",
    )
    flat_a: Dict[str, object] = {}
    flat_b: Dict[str, object] = {}
    for section in sections:
        _flatten(section, getattr(a, section), flat_a)
        _flatten(section, getattr(b, section), flat_b)
    diffs: List[Tuple[str, object, object]] = []
    for key in sorted(set(flat_a) | set(flat_b)):
        if key.endswith(".samples"):  # raw retention buffers, not facts
            continue
        va = flat_a.get(key, "<absent>")
        vb = flat_b.get(key, "<absent>")
        if va == vb:
            continue
        if (
            isinstance(va, (int, float))
            and isinstance(vb, (int, float))
            and not isinstance(va, bool)
            and not isinstance(vb, bool)
        ):
            scale = max(abs(float(va)), abs(float(vb)))
            if scale > 0 and abs(float(va) - float(vb)) / scale < 1e-3:
                continue
        diffs.append((key, va, vb))
    meta = {
        "a": {"command": a.command, "started_at": a.started_at},
        "b": {"command": b.command, "started_at": b.started_at},
        "compared": len(set(flat_a) | set(flat_b)),
    }
    return diffs, meta


def bench_check(
    path: Union[str, Path], max_regress: float = 0.10
) -> Tuple[bool, str]:
    """Regression-gate the newest entry of a ``BENCH_*.json`` trajectory.

    The benchmark files are append-only lists of runs; the key figure
    is ``speedup`` (flow/parallel benches),
    ``speedup_default_vs_seed`` (characterization bench) or
    ``trial_savings`` (adaptive-sampling bench).  The check
    passes when the newest entry's figure is within ``max_regress``
    (relative) of the best figure in its history -- a one-entry file
    passes trivially (nothing to regress against).  Entries from a
    different platform/CPU count than the newest are still compared:
    the committed trajectory *is* cross-machine, so gate with a
    generous ``max_regress`` in CI.
    """
    with open(path) as handle:
        entries = json.load(handle)
    if not isinstance(entries, list) or not entries:
        return False, f"{path}: not a benchmark trajectory (expected a list)"
    metric = None
    for candidate in ("speedup", "speedup_default_vs_seed", "trial_savings"):
        if candidate in entries[-1]:
            metric = candidate
            break
    if metric is None:
        return False, f"{path}: newest entry has no speedup figure"
    newest = float(entries[-1][metric])
    history = [
        float(entry[metric]) for entry in entries[:-1] if metric in entry
    ]
    if not history:
        return True, (
            f"{Path(path).name}: {metric}={newest:.2f}x "
            f"(single entry, nothing to regress against)"
        )
    best = max(history)
    floor = best * (1.0 - max_regress)
    ok = newest >= floor
    verdict = "ok" if ok else "REGRESSION"
    return ok, (
        f"{Path(path).name}: {metric}={newest:.2f}x vs best {best:.2f}x "
        f"(floor {floor:.2f}x at -{max_regress:.0%}) -- {verdict}"
    )
