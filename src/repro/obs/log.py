"""Structured logging for the library and the CLI.

Two separate channels, both rooted under the stdlib ``logging`` tree:

* ``repro.*`` — diagnostic logging from library modules (progress,
  cache decisions, throughput).  Silent by default (a ``NullHandler``
  on the root ``repro`` logger); :func:`configure_logging` attaches a
  stderr handler at the requested ``--log-level``.
* ``repro.cli.out`` — the CLI's *user-facing* result lines, emitted at
  INFO to stdout with a bare formatter.  ``--quiet`` raises this
  channel to ERROR, suppressing all non-error output.

Library modules obtain loggers with ``get_logger(__name__)`` and log
key=value structured messages (see :func:`kv`)::

    _log = get_logger(__name__)
    _log.debug("array-mc chunk %s", kv(done=done, total=n, rays_per_s=r))
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = [
    "LOGGER_NAME",
    "OUT_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "get_output_logger",
    "kv",
]

LOGGER_NAME = "repro"
OUT_LOGGER_NAME = "repro.cli.out"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

# Library is silent unless the host application configures logging.
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` tree (module diagnostics)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if not name.startswith(LOGGER_NAME):
        name = f"{LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def get_output_logger() -> logging.Logger:
    """The CLI's user-facing stdout channel."""
    return logging.getLogger(OUT_LOGGER_NAME)


def resolve_level(level) -> int:
    """Map a level name (or int) to a ``logging`` level."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; pick one of {sorted(_LEVELS)}"
        ) from None


def configure_logging(
    level="warning",
    quiet: bool = False,
    stream=None,
    out_stream=None,
):
    """(Re)configure both channels; idempotent per call.

    Handlers are replaced, not stacked, so repeated CLI invocations in
    one process (tests!) never duplicate output.  ``stream`` defaults
    to the *current* ``sys.stderr`` and ``out_stream`` to the current
    ``sys.stdout`` so capture fixtures see the output.
    """
    diag = logging.getLogger(LOGGER_NAME)
    for handler in list(diag.handlers):
        diag.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    diag.addHandler(handler)
    diag.setLevel(resolve_level(level))
    diag.propagate = False

    out = logging.getLogger(OUT_LOGGER_NAME)
    for handler in list(out.handlers):
        out.removeHandler(handler)
    out_handler = logging.StreamHandler(
        out_stream if out_stream is not None else sys.stdout
    )
    out_handler.setFormatter(logging.Formatter("%(message)s"))
    out.addHandler(out_handler)
    out.setLevel(logging.ERROR if quiet else logging.INFO)
    out.propagate = False


def kv(**fields) -> str:
    """Render keyword fields as a ``key=value`` structured suffix."""
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)
