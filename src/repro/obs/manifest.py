"""Run manifests: one JSON document per CLI invocation.

The manifest is the durable record of a run — what was asked
(command, argv, config, seed), what it cost (stage timings, MC trial
counts, rays/sec throughput), how trustworthy the numbers are
(convergence standard errors), and whether the LUT caches worked
(hit/miss/write counts).  ``repro-ser <cmd> --metrics-out run.json``
writes one; :func:`RunManifest.from_dict` round-trips it.

Convenience sections (``stage_timings_s``, ``mc``, ``lut_cache``,
``convergence``, ``convergence_bins``, ``fault_tolerance``,
``parallel``, ``adaptive``, ``service``) are *derived* from the full metrics snapshot kept in
``metrics`` — the snapshot is the ground truth, the sections are what
a human greps for first.  The ``environment`` section additionally
captures the live execution-plane state (kill-switch environment
variables, effective warm-pool/shm defaults, CPU count, start
method), so a run is reproducible — execution plane included — from
the manifest alone.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..errors import SerializationError
from .registry import get_registry

#: Environment variables recorded verbatim in the manifest: the
#: execution-plane kill switches plus the fault-injection hook —
#: anything that changes how (never what) a run computes.
TRACKED_ENV = (
    "REPRO_NO_WARM_POOL",
    "REPRO_NO_SHM",
    "REPRO_BACKEND",
    "REPRO_PARALLEL_KILL",
)


def capture_environment(config: Optional[dict] = None) -> dict:
    """Snapshot the execution-plane state active for this run.

    Records every ``REPRO_*`` environment variable (the tracked kill
    switches explicitly, even when unset), the *effective*
    warm-pool/shm defaults after env + override resolution, the
    resolved job count from the run config, the host CPU count, and
    the multiprocessing start method.
    """
    # local imports: repro.parallel / repro.backend import repro.obs at
    # module load, so the reverse edges must stay call-time only.
    from ..backend import resolve_backend
    from ..parallel.pool import warm_pool_enabled
    from ..parallel.shm import shm_enabled

    env = {name: os.environ.get(name) for name in TRACKED_ENV}
    env.update(
        {
            name: value
            for name, value in os.environ.items()
            if name.startswith("REPRO_")
        }
    )
    config = config or {}
    return {
        "env": env,
        "warm_pool_enabled": warm_pool_enabled(),
        "shm_enabled": shm_enabled(),
        "n_jobs": config.get("jobs"),
        "cpu_count": os.cpu_count(),
        "start_method": multiprocessing.get_start_method(allow_none=True),
        # the *effective* backend after env/override/availability
        # resolution -- not merely what the config asked for
        "backend": resolve_backend(config.get("backend")),
    }

__all__ = [
    "RunManifest",
    "build_manifest",
    "capture_environment",
    "MANIFEST_KIND",
    "SCHEMA_VERSION",
    "TRACKED_ENV",
]

MANIFEST_KIND = "run_manifest"
SCHEMA_VERSION = 1

#: Metric-name prefixes lifted into the manifest's summary sections.
_STAGE_PREFIX = "stage."
_CONVERGENCE_PREFIX = "fit.pof_se."


@dataclass
class RunManifest:
    """Schema of one run record (see module docstring)."""

    command: str
    argv: List[str]
    config: dict
    seed: Optional[int]
    started_at: str
    duration_s: float
    exit_code: int
    version: str
    python: str = field(default_factory=platform.python_version)
    stage_timings_s: dict = field(default_factory=dict)
    mc: dict = field(default_factory=dict)
    lut_cache: dict = field(default_factory=dict)
    convergence: dict = field(default_factory=dict)
    convergence_bins: dict = field(default_factory=dict)
    fault_tolerance: dict = field(default_factory=dict)
    parallel: dict = field(default_factory=dict)
    adaptive: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    backend: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": MANIFEST_KIND,
            "schema_version": SCHEMA_VERSION,
            "command": self.command,
            "argv": list(self.argv),
            "config": self.config,
            "seed": self.seed,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "exit_code": self.exit_code,
            "version": self.version,
            "python": self.python,
            "stage_timings_s": self.stage_timings_s,
            "mc": self.mc,
            "lut_cache": self.lut_cache,
            "convergence": self.convergence,
            "convergence_bins": self.convergence_bins,
            "fault_tolerance": self.fault_tolerance,
            "parallel": self.parallel,
            "adaptive": self.adaptive,
            "service": self.service,
            "backend": self.backend,
            "environment": self.environment,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        if payload.get("kind") != MANIFEST_KIND:
            raise SerializationError(
                f"payload is not a run manifest (kind={payload.get('kind')!r})"
            )
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise SerializationError(
                "unsupported manifest schema version "
                f"{payload.get('schema_version')!r}"
            )
        required = (
            "command",
            "argv",
            "config",
            "started_at",
            "duration_s",
            "exit_code",
            "version",
        )
        missing = [key for key in required if key not in payload]
        if missing:
            raise SerializationError(
                f"manifest is missing required keys: {missing}"
            )
        return cls(
            command=payload["command"],
            argv=list(payload["argv"]),
            config=dict(payload["config"]),
            seed=payload.get("seed"),
            started_at=payload["started_at"],
            duration_s=float(payload["duration_s"]),
            exit_code=int(payload["exit_code"]),
            version=payload["version"],
            python=payload.get("python", ""),
            stage_timings_s=dict(payload.get("stage_timings_s", {})),
            mc=dict(payload.get("mc", {})),
            lut_cache=dict(payload.get("lut_cache", {})),
            convergence=dict(payload.get("convergence", {})),
            convergence_bins=dict(payload.get("convergence_bins", {})),
            fault_tolerance=dict(payload.get("fault_tolerance", {})),
            parallel=dict(payload.get("parallel", {})),
            adaptive=dict(payload.get("adaptive", {})),
            service=dict(payload.get("service", {})),
            backend=dict(payload.get("backend", {})),
            environment=dict(payload.get("environment", {})),
            metrics=dict(payload.get("metrics", {})),
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Atomically write the manifest as pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"cannot load manifest {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)


def build_manifest(
    command: str,
    argv: List[str],
    config: dict,
    seed: Optional[int],
    started_at: str,
    duration_s: float,
    exit_code: int,
    version: str,
    registry=None,
) -> RunManifest:
    """Assemble a manifest from the current metrics registry snapshot."""
    registry = registry if registry is not None else get_registry()
    snapshot = registry.snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    timers = snapshot.get("timers", {})

    stage_timings = {
        # drop the raw retention buffer ("samples") from the derived
        # section -- it exists for cross-process merging and stays in
        # the ground-truth ``metrics`` snapshot; the summary keeps the
        # digested p50/p99.
        name[len(_STAGE_PREFIX):]: {
            key: value for key, value in stats.items() if key != "samples"
        }
        for name, stats in timers.items()
        if name.startswith(_STAGE_PREFIX)
    }
    mc = {
        "array_particles": counters.get("array_mc.particles", 0),
        "array_hits": counters.get("array_mc.hits", 0),
        "fin_strikes": counters.get("array_mc.strikes", 0),
        "array_runs": counters.get("array_mc.runs", 0),
        "transport_trials": counters.get("transport.trials", 0),
        "characterization_points": counters.get(
            "characterize.grid_points", 0
        ),
        "rays_per_sec": gauges.get("array_mc.rays_per_sec", 0.0),
    }
    lut_cache = {
        "hits": counters.get("lut_cache.hits", 0),
        "misses": counters.get("lut_cache.misses", 0),
        "writes": counters.get("lut_cache.writes", 0),
        "invalid": counters.get("lut_cache.invalid", 0),
    }
    convergence = {
        name[len(_CONVERGENCE_PREFIX):]: value
        for name, value in gauges.items()
        if name.startswith(_CONVERGENCE_PREFIX)
    }
    fault_tolerance = {
        "retried_shards": counters.get("parallel.retries", 0),
        "lost_shards": counters.get("parallel.degraded", 0),
        "degraded_maps": counters.get("parallel.degraded_maps", 0),
        "degraded": counters.get("parallel.degraded", 0) > 0,
        "journal_records": counters.get("journal.records", 0),
        "journal_resumed": counters.get("journal.resumed", 0),
        "journal_invalid": counters.get("journal.invalid", 0),
    }
    parallel = {
        "pools_created": counters.get("parallel.pool.created", 0),
        "pools_reused": counters.get("parallel.pool.reused", 0),
        "pools_invalidated": counters.get("parallel.pool.invalidated", 0),
        "shm_segments": counters.get("parallel.shm.segments", 0),
        "shm_bytes": counters.get("parallel.shm.bytes", 0),
        "shm_dedup_hits": counters.get("parallel.shm.hits", 0),
        "shm_fallbacks": counters.get("parallel.shm.fallback", 0),
        "worker_payload_hits": counters.get("parallel.shm.payload_hits", 0),
    }
    adaptive = {
        "rounds": counters.get("adaptive.rounds", 0),
        "blocks": counters.get("adaptive.blocks", 0),
        "trials": counters.get("adaptive.trials", 0),
        "bins": counters.get("adaptive.bins", 0),
        "bins_converged": counters.get("adaptive.bins_converged", 0),
        "bins_at_ceiling": counters.get("adaptive.bins_ceiling", 0),
    }
    _RUNS_PREFIX = "backend.runs."
    backend = {
        "runs": {
            name[len(_RUNS_PREFIX):]: value
            for name, value in counters.items()
            if name.startswith(_RUNS_PREFIX)
        },
        "fallbacks": counters.get("backend.fallbacks", 0),
        "uploads": counters.get("backend.uploads", 0),
        "upload_hits": counters.get("backend.upload_hits", 0),
        "upload_bytes": counters.get("backend.upload_bytes", 0),
        "fused_plans": counters.get("backend.fused_plans", 0),
        "fused_campaigns": counters.get("backend.fused_campaigns", 0),
        "fused_blocks": counters.get("backend.fused_blocks", 0),
    }
    from .convergence import get_convergence_tracker

    convergence_bins = get_convergence_tracker().summary()
    request_timer = timers.get("service.request", {})
    campaign_timer = timers.get("service.campaign", {})
    service = {
        "requests": counters.get("service.requests", 0),
        "coalesced": counters.get("service.coalesced", 0),
        "memo_hits": counters.get("service.memo_hits", 0),
        "rejected": counters.get("service.rejected", 0),
        "campaigns": counters.get("service.campaigns", 0),
        "failures": counters.get("service.failures", 0),
        "request_p50_s": request_timer.get("p50_s", 0.0),
        "request_p99_s": request_timer.get("p99_s", 0.0),
        "campaign_p50_s": campaign_timer.get("p50_s", 0.0),
        "campaign_p99_s": campaign_timer.get("p99_s", 0.0),
        "served": _served_campaigns(),
    }
    return RunManifest(
        command=command,
        argv=list(argv),
        config=config,
        seed=seed,
        started_at=started_at,
        duration_s=duration_s,
        exit_code=exit_code,
        version=version,
        stage_timings_s=stage_timings,
        mc=mc,
        lut_cache=lut_cache,
        convergence=convergence,
        convergence_bins=convergence_bins,
        fault_tolerance=fault_tolerance,
        parallel=parallel,
        adaptive=adaptive,
        service=service,
        backend=backend,
        environment=capture_environment(config),
        metrics=snapshot,
    )


def _served_campaigns() -> List[dict]:
    """One ledger entry per campaign this process served (may be [])."""
    # call-time import: repro.service imports repro.obs at module load,
    # so the reverse edge must stay lazy (same pattern as convergence)
    from ..service import get_service_ledger

    return get_service_ledger().summary()
