"""Process-wide metrics registry (counters, gauges, timers, histograms).

The registry is the measurement surface of the whole flow: every hot
path increments named instruments through :func:`get_registry`, and a
run's :class:`~repro.obs.manifest.RunManifest` snapshots them at exit.

Instrumentation is **disabled by default** so library users and the
benchmarks pay nothing: :func:`get_registry` then returns the shared
:class:`NullRegistry`, whose instruments are shared no-op singletons.
Call :func:`enable_metrics` (the CLI does) to install a live
:class:`MetricsRegistry`.

Thread-safety: instrument *creation* is locked; instrument *updates*
are plain attribute arithmetic (exact under the GIL for the
single-threaded flow; approximate, never crashing, under threads).
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1):
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A last-write-wins scalar (e.g. current throughput)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float):
        self.value = float(value)

    def snapshot(self):
        return self.value


def _exact_quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of a sample list (0 when empty)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = q * (len(ordered) - 1)
    lo = int(math.floor(position))
    hi = int(math.ceil(position))
    if lo == hi:
        return ordered[lo]
    frac = position - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


#: Retained-sample cap per timer.  Past it the sample list is decimated
#: deterministically (every other sample dropped, retention stride
#: doubled) so quantiles stay representative at bounded memory and the
#: snapshot -- which travels from pool workers to the parent and into
#: the run manifest -- stays small.
TIMER_MAX_SAMPLES = 256


class Timer:
    """Accumulated duration statistics (seconds) with quantiles.

    Alongside the running count/total/min/max, a bounded sample list
    is retained so :meth:`quantile` (and the ``p50_s`` / ``p99_s``
    snapshot fields) report *exact* quantiles while the observation
    count stays under :data:`TIMER_MAX_SAMPLES`; past that the list is
    thinned by deterministic stride-doubling decimation, degrading the
    quantiles gracefully to a uniform subsample.
    """

    __slots__ = (
        "name", "count", "total_s", "min_s", "max_s",
        "samples", "_stride", "_phase",
    )

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0
        self.samples: List[float] = []
        self._stride = 1
        self._phase = 0

    def observe(self, seconds: float):
        seconds = float(seconds)
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        self._retain(seconds)

    def _retain(self, seconds: float):
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        self.samples.append(seconds)
        if len(self.samples) > TIMER_MAX_SAMPLES:
            self.samples = self.samples[::2]
            self._stride *= 2

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact quantile of the retained duration samples [s]."""
        return _exact_quantile(self.samples, q)

    def merge(self, snapshot: dict):
        """Fold another timer's :meth:`snapshot` into this one."""
        count = int(snapshot.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total_s += float(snapshot.get("total_s", 0.0))
        self.min_s = min(self.min_s, float(snapshot.get("min_s", math.inf)))
        self.max_s = max(self.max_s, float(snapshot.get("max_s", 0.0)))
        for sample in snapshot.get("samples", ()):
            self._retain(float(sample))

    def time(self):
        """Context manager observing the wall time of its body."""
        return _TimerContext(self)

    def snapshot(self):
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.quantile(0.5),
            "p99_s": self.quantile(0.99),
            "samples": list(self.samples),
        }


class _TimerContext:
    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: Timer):
        self._timer = timer

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self._timer

    def __exit__(self, exc_type, exc, tb):
        self._timer.observe(time.perf_counter() - self._t0)
        return False


#: Default histogram bin edges: log-ish spread useful for POF standard
#: errors and per-chunk durations alike.
DEFAULT_EDGES = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Histogram:
    """A fixed-bin histogram.

    ``edges`` are the upper bounds of the first ``len(edges)`` bins; a
    final overflow bin absorbs everything above the last edge, so
    ``counts`` has ``len(edges) + 1`` entries.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(self, name: str, edges: Optional[Sequence[float]] = None):
        self.name = name
        edges = tuple(float(e) for e in (edges or DEFAULT_EDGES))
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        self.edges = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float):
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile of the observed distribution.

        The value is linearly interpolated inside the bin the target
        rank falls in; the underflow bin interpolates from 0 (our
        histograms observe non-negative quantities) and the overflow
        bin -- which has no upper bound -- reports the last edge, a
        deliberate underestimate that keeps the result finite.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bin_count in enumerate(self.counts):
            if cumulative + bin_count >= target and bin_count > 0:
                lo = 0.0 if i == 0 else self.edges[i - 1]
                if i >= len(self.edges):
                    return self.edges[-1]
                hi = self.edges[i]
                frac = (target - cumulative) / bin_count
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cumulative += bin_count
        return self.edges[-1]

    def merge(self, snapshot: dict):
        """Fold another histogram's :meth:`snapshot` into this one."""
        edges = tuple(float(e) for e in snapshot.get("edges", ()))
        if edges != self.edges:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: edge mismatch"
            )
        for i, count in enumerate(snapshot.get("counts", ())):
            self.counts[i] += int(count)
        self.count += int(snapshot.get("count", 0))
        self.total += float(snapshot.get("total", 0.0))

    def snapshot(self):
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able to a dict."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _get(self, store, name, factory):
        instrument = store.get(name)
        if instrument is None:
            with self._lock:
                instrument = store.get(name)
                if instrument is None:
                    instrument = store[name] = factory(name)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(self._timers, name, Timer)

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(
            self._histograms, name, lambda n: Histogram(n, edges)
        )

    def time(self, name: str):
        """Shorthand: ``with registry.time("stage.fit"): ...``."""
        return self.timer(name).time()

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-safe)."""
        with self._lock:
            return {
                "counters": {
                    k: v.snapshot() for k, v in sorted(self._counters.items())
                },
                "gauges": {
                    k: v.snapshot() for k, v in sorted(self._gauges.items())
                },
                "timers": {
                    k: v.snapshot() for k, v in sorted(self._timers.items())
                },
                "histograms": {
                    k: v.snapshot()
                    for k, v in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snapshot: dict):
        """Fold a :meth:`snapshot` dict (e.g. from a pool worker) in.

        Counters and histogram bins add, timers merge their duration
        statistics, gauges are last-write-wins.  This is how
        :func:`repro.parallel.parallel_map` surfaces worker-side
        instrumentation in the parent process manifest.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, timer_snapshot in snapshot.get("timers", {}).items():
            self.timer(name).merge(timer_snapshot)
        for name, hist_snapshot in snapshot.get("histograms", {}).items():
            self.histogram(name, hist_snapshot.get("edges")).merge(
                hist_snapshot
            )

    def reset(self):
        """Drop every instrument (a fresh run starts clean)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()


class _NullInstrument:
    """Shared do-nothing instrument returned by :class:`NullRegistry`."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total_s = 0.0
    mean_s = 0.0

    def inc(self, amount: int = 1):
        pass

    def set(self, value: float):
        pass

    def observe(self, value: float):
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def time(self):
        return _NULL_CONTEXT

    def snapshot(self):
        return 0


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CONTEXT = _NullContext()
_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-state registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def timer(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, edges=None):
        return _NULL_INSTRUMENT

    def time(self, name: str):
        return _NULL_CONTEXT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: dict):
        pass

    def reset(self):
        pass


_NULL_REGISTRY = NullRegistry()
_registry = _NULL_REGISTRY


def get_registry():
    """The process-wide registry (the no-op one unless metrics are on)."""
    return _registry


def enable_metrics(fresh: bool = False) -> MetricsRegistry:
    """Install (or return) the live registry.

    ``fresh=True`` resets any existing instruments so each CLI
    invocation starts a clean manifest.
    """
    global _registry
    if not isinstance(_registry, MetricsRegistry):
        _registry = MetricsRegistry()
    elif fresh:
        _registry.reset()
    return _registry


def disable_metrics():
    """Restore the zero-cost no-op registry."""
    global _registry
    _registry = _NULL_REGISTRY


def metrics_enabled() -> bool:
    return _registry.enabled
