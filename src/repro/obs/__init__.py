"""Observability substrate: metrics, tracing spans, logging, manifests.

The flow's measurement surface, used by every level of the
device→cell→array pipeline:

* :func:`get_registry` / :func:`enable_metrics` — process-wide
  counters, gauges, timers and fixed-bin histograms
  (:mod:`repro.obs.registry`).
* :func:`span` / :func:`configure_tracing` — nesting wall-time spans
  streamed to a JSONL trace file (:mod:`repro.obs.trace`).
* :func:`configure_logging` / :func:`get_logger` — structured
  diagnostic logging with a quiet/level knob (:mod:`repro.obs.log`).
* :class:`RunManifest` / :func:`build_manifest` — the per-invocation
  JSON run record (:mod:`repro.obs.manifest`).

Everything is **disabled by default** and zero-cost in that state: the
registry is a shared no-op, ``span()`` returns a shared no-op context
manager, and library loggers carry a ``NullHandler``.  The CLI enables
the pieces requested by ``--log-level``, ``--metrics-out`` and
``--trace``.
"""

from .convergence import (
    ConvergenceTracker,
    binomial_standard_error,
    get_convergence_tracker,
    record_bin,
    reset_convergence,
)
from .events import (
    EventBus,
    EventRing,
    configure_events,
    disable_events,
    emit_event,
    events_enabled,
    get_event_bus,
)
from .jsonl import JsonlWriter, read_jsonl
from .log import (
    configure_logging,
    get_logger,
    get_output_logger,
    kv,
)
from .manifest import RunManifest, build_manifest, capture_environment
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
)
from .trace import (
    Span,
    TraceWriter,
    configure_tracing,
    current_span,
    reset_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    # tracing
    "span",
    "Span",
    "TraceWriter",
    "configure_tracing",
    "reset_tracing",
    "tracing_enabled",
    "current_span",
    # logging
    "configure_logging",
    "get_logger",
    "get_output_logger",
    "kv",
    # events
    "EventBus",
    "EventRing",
    "configure_events",
    "disable_events",
    "emit_event",
    "events_enabled",
    "get_event_bus",
    # convergence
    "ConvergenceTracker",
    "binomial_standard_error",
    "get_convergence_tracker",
    "record_bin",
    "reset_convergence",
    # jsonl
    "JsonlWriter",
    "read_jsonl",
    # manifest
    "RunManifest",
    "build_manifest",
    "capture_environment",
]
