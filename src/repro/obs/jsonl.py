"""Crash-safe append-only JSONL sinks with size-based rotation.

Both the tracing spans (:mod:`repro.obs.trace`) and the telemetry
events (:mod:`repro.obs.events`) stream JSON lines to disk while
Monte Carlo campaigns run.  Those campaigns are exactly the code that
gets OOM-killed, ``os._exit``-ed by the fault-injection hook, or
forked into pool workers -- so the sink has to survive all three:

* **No userspace buffering.**  Every record is serialized to one
  ``bytes`` line and written with a single ``os.write`` on an
  ``O_APPEND`` descriptor.  An abrupt process death (``os._exit``,
  ``SIGKILL``) can lose at most the line in flight -- never previously
  written ones, which a buffered ``io`` handle would still be holding.
* **Fork-safe appends.**  A forked worker inheriting the descriptor
  appends whole lines at the file end (``O_APPEND`` positions each
  write atomically), so parent and child lines interleave but never
  tear each other.  Readers must still tolerate a torn *final* line
  from a crash mid-write: :func:`read_jsonl` skips undecodable lines
  instead of raising.
* **Bounded growth.**  When the file would exceed ``max_bytes`` the
  current file is rotated to ``<path>.1`` (replacing any previous
  rotation) and writing continues on a fresh file, re-led by the
  header record -- long campaigns cannot fill the disk.
"""

from __future__ import annotations

import json
import os
import threading
import weakref
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = ["JsonlWriter", "read_jsonl", "DEFAULT_MAX_BYTES"]

#: Writers alive in this process, tracked so a fork can re-arm their
#: locks in the child (see :func:`_reset_locks_after_fork`).
_LIVE_WRITERS: "weakref.WeakSet[JsonlWriter]" = weakref.WeakSet()


def _reset_locks_after_fork():
    """Replace every live writer's lock with a fresh one in the child.

    A pool worker can be forked at any instant -- including while a
    parent thread (the event pump, a span exiting) holds a writer's
    lock mid-``write``.  The child inherits that lock *locked* with
    nobody to release it, so the first child-side ``write`` or
    ``close`` (worker initializers call
    :func:`~repro.obs.events.disable_events`) would deadlock forever.
    The lock only serializes threads *within* one process -- cross-
    process exclusion comes from ``O_APPEND`` whole-line writes -- so
    swapping in an unlocked lock in the child is safe.
    """
    for writer in list(_LIVE_WRITERS):
        writer._lock = threading.Lock()


os.register_at_fork(after_in_child=_reset_locks_after_fork)

#: Default rotation threshold (64 MiB) -- generous for traces and
#: events alike, small enough that a runaway campaign cannot fill a
#: disk with telemetry.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class JsonlWriter:
    """Append-only JSONL file: one ``os.write`` per record, rotated.

    Parameters
    ----------
    path:
        Destination file.  Truncated on open (each run starts a fresh
        stream), appended afterwards.
    header:
        Optional record written first -- and re-written after every
        rotation, so each file in a rotation chain is self-describing.
    max_bytes:
        Size-based rotation threshold; when a write would push the
        file past it, the file moves to ``<path>.1`` and a fresh file
        (with the header) takes over.  ``None`` disables rotation.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: Optional[dict] = None,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ):
        self.path = str(path)
        self.header = dict(header) if header is not None else None
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024 (None = no rotation)")
        self.max_bytes = max_bytes
        self.rotations = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self._fd: Optional[int] = None
        self._bytes = 0
        _LIVE_WRITERS.add(self)
        self._open(truncate=True)
        if self.header is not None:
            self.write(self.header)

    def _open(self, truncate: bool):
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if truncate:
            flags |= os.O_TRUNC
        self._fd = os.open(self.path, flags, 0o644)
        self._bytes = 0 if truncate else os.fstat(self._fd).st_size

    @property
    def closed(self) -> bool:
        return self._fd is None

    def write(self, record: dict):
        """Durably append one record (whole-line single ``os.write``)."""
        line = (
            json.dumps(record, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._fd is None:
                return
            if (
                self.max_bytes is not None
                and self._bytes
                and self._bytes + len(line) > self.max_bytes
                and os.getpid() == self._owner_pid
            ):
                self._rotate_locked()
            os.write(self._fd, line)
            self._bytes += len(line)

    def _rotate_locked(self):
        os.close(self._fd)
        self._fd = None
        os.replace(self.path, self.path + ".1")
        self._open(truncate=True)
        self.rotations += 1
        if self.header is not None:
            header = dict(self.header)
            header["rotated"] = self.rotations
            line = (
                json.dumps(header, sort_keys=True, default=str) + "\n"
            ).encode("utf-8")
            os.write(self._fd, line)
            self._bytes += len(line)

    def close(self):
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


def read_jsonl(path: Union[str, Path]) -> Tuple[List[dict], int]:
    """Tolerantly read a JSONL file: ``(records, invalid line count)``.

    Torn trailing lines (a writer died mid-append), rotated-away
    headers, and hand-damaged entries are skipped and counted, never
    raised -- mirroring the :class:`~repro.parallel.journal.ShardJournal`
    discipline, so an inspection tool pointed at a live or crashed
    run's telemetry always gets the valid prefix.
    """
    records: List[dict] = []
    invalid = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                invalid += 1
                continue
            if not isinstance(record, dict):
                invalid += 1
                continue
            records.append(record)
    return records, invalid
