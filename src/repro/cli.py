"""Command-line interface: ``repro-ser`` / ``python -m repro``.

Subcommands mirror the flow stages:

* ``info``       -- technology card figures of merit.
* ``qcrit``      -- nominal critical charge vs Vdd.
* ``snm``        -- hold/read static noise margins vs Vdd.
* ``build-luts`` -- build and cache the device- and cell-level LUTs.
* ``fit``        -- FIT rate of one (particle, vdd) case.
* ``sweep``      -- the full Fig. 9/10 evaluation sweep.
* ``figures``    -- export every reproduced figure series as CSV.
* ``report``     -- regenerate the paper's evaluation as markdown.
* ``serve``      -- long-lived SER-service daemon: NDJSON queries over
  a unix/TCP socket with single-flight coalescing, memoization,
  admission control, and per-tenant fair scheduling (docs/service.md).
* ``query``      -- client for ``serve``: one sweep (optionally with
  ECC/interleave analysis), streamed progress with ``--watch``.

Every subcommand accepts ``--jobs N`` to fan the Monte Carlo stages
out across N worker processes (``0`` = one per CPU; results are
bit-identical for any value -- see ``docs/performance.md``), the
fault-tolerance knobs (see ``docs/robustness.md``):

* ``--retries N``     -- retry rounds for shards lost to worker
  crashes (default 2).
* ``--task-timeout S`` -- progress watchdog on the worker pool.
* ``--resume/--no-resume`` -- checkpoint completed shards under the
  cache dir and resume interrupted campaigns bit-identically.

the execution-engine knobs (see ``docs/performance.md``):

* ``--no-warm-pool`` -- disable warm pool leasing (one throwaway pool
  per Monte Carlo map).
* ``--no-shm``       -- disable the shared-memory payload plane (bulk
  arrays pickle inline with every map).

the adaptive-sampling knobs (see ``docs/performance.md``):

* ``--adaptive``     -- adaptive trial allocation + stratified
  sampling for the FIT campaigns (``--mc-particles`` becomes the
  per-bin trial ceiling).
* ``--target-se SE`` / ``--target-se-relative`` -- per-bin POF
  standard-error stopping target (absolute, or relative to the POF).
* ``--max-trials N`` / ``--pilot-trials N`` -- per-bin ceiling and
  the uniform pilot budget of round 0.

plus the observability flags (see ``docs/observability.md``):

* ``--log-level {debug,info,warning,error}`` -- diagnostic logging to
  stderr (per-chunk MC progress lives at ``debug``).
* ``--quiet``        -- suppress all non-error output.
* ``--metrics-out``  -- write a JSON run manifest (config, seed, stage
  timings, MC trial counts, throughput, cache hit/miss counts).
* ``--trace``        -- stream nested stage spans to a JSONL file.
* ``--events``       -- stream live progress/heartbeat/convergence
  events to a JSONL file while campaigns run.

The ``obs`` subcommand family inspects what the flags above produce:
``obs tail`` renders an event stream (``--follow`` live-tails a
running campaign with ETA and stall warnings), ``obs summarize``
folds a trace/events/manifest file into per-span p50/p99 tables,
``obs diff`` compares two run manifests, and ``obs bench-check``
regression-gates a committed ``BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import argparse
import datetime
import sys
import time

import numpy as np

from . import __version__
from .obs import (
    build_manifest,
    configure_events,
    configure_logging,
    configure_tracing,
    disable_events,
    enable_metrics,
    get_output_logger,
    reset_tracing,
    span,
)


def _say(message: str):
    """User-facing result line (suppressed by ``--quiet``)."""
    get_output_logger().info(message)


def _add_obs(parser):
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        default="warning",
        choices=["debug", "info", "warning", "error"],
        help="diagnostic log level on stderr (default: warning)",
    )
    group.add_argument(
        "--quiet",
        action="store_true",
        help="suppress all non-error output",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a JSON run manifest (timings, counts, throughput)",
    )
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream stage spans to a JSONL trace file",
    )
    group.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream live progress/heartbeat/convergence events to a "
        "JSONL file while campaigns run (tail it with 'obs tail')",
    )


def _add_jobs(parser):
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the Monte Carlo stages "
        "(1 = serial, 0 = one per CPU; results are identical "
        "for any value)",
    )
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry rounds for shards lost to worker crashes "
        "(default: 2; 0 fails on the first loss)",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="progress watchdog: retry in-flight shards if no shard "
        "completes for S seconds (default: off)",
    )
    group.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="checkpoint completed Monte Carlo shards under the cache "
        "dir and resume interrupted campaigns bit-identically "
        "(default: on; --no-resume disables checkpointing)",
    )
    engine = parser.add_argument_group("execution engine")
    engine.add_argument(
        "--no-warm-pool",
        dest="warm_pool",
        action="store_false",
        default=True,
        help="build and tear down a worker pool per Monte Carlo map "
        "instead of leasing warm pools across the run (results are "
        "identical either way)",
    )
    engine.add_argument(
        "--no-shm",
        dest="shm",
        action="store_false",
        default=True,
        help="ship bulk payload arrays inline with each map instead "
        "of through shared-memory segments (results are identical "
        "either way)",
    )
    engine.add_argument(
        "--backend",
        choices=("numpy", "numba", "cupy"),
        default=None,
        help="array-compute backend for the hot kernels (default: "
        "numpy, or REPRO_BACKEND; unavailable backends fall back to "
        "numpy; the numpy path is bit-identical to the historical "
        "kernels)",
    )
    engine.add_argument(
        "--fuse",
        action="store_true",
        default=False,
        help="fuse a whole sweep's campaigns into one batched "
        "parallel map (bit-identical results, fewer fan-outs; "
        "ignored by adaptive allocation)",
    )


def _retry_policy(args):
    from .parallel import RetryPolicy

    return RetryPolicy(
        retries=getattr(args, "retries", 2),
        task_timeout_s=getattr(args, "task_timeout", None),
    )


def _add_common(parser):
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--particles",
        default="alpha,proton",
        help="comma-separated particles (default: alpha,proton)",
    )
    parser.add_argument(
        "--mc-particles",
        type=int,
        default=50000,
        help="array-MC particles per energy bin",
    )
    parser.add_argument(
        "--samples", type=int, default=200, help="variation MC samples"
    )
    parser.add_argument(
        "--yield-trials",
        type=int,
        default=20000,
        help="transport MC trials per yield-LUT energy point",
    )
    parser.add_argument(
        "--yield-points",
        type=int,
        default=13,
        help="energy points of the yield LUTs",
    )
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--no-variation",
        action="store_true",
        help="neglect process variation (nominal binary POFs)",
    )
    _add_cell_kernel(parser)
    _add_adaptive(parser)


def _add_adaptive(parser):
    group = parser.add_argument_group("adaptive sampling")
    group.add_argument(
        "--adaptive",
        action="store_true",
        help="replace the uniform per-bin trial budget with adaptive "
        "allocation + stratified sampling (see docs/performance.md); "
        "--mc-particles then acts as the per-bin trial ceiling",
    )
    group.add_argument(
        "--target-se",
        type=float,
        default=5e-4,
        metavar="SE",
        help="per-bin POF standard-error target for --adaptive "
        "(default: 5e-4)",
    )
    group.add_argument(
        "--target-se-relative",
        action="store_true",
        help="interpret --target-se relative to each bin's POF "
        "estimate instead of absolutely",
    )
    group.add_argument(
        "--max-trials",
        type=int,
        default=None,
        metavar="N",
        help="hard per-bin trial ceiling for --adaptive "
        "(default: --mc-particles)",
    )
    group.add_argument(
        "--pilot-trials",
        type=int,
        default=8192,
        metavar="N",
        help="uniform pilot trials per bin before adaptive rounds "
        "(default: 8192)",
    )


def _add_cell_kernel(parser):
    group = parser.add_argument_group("cell kernel")
    group.add_argument(
        "--cell-kernel",
        choices=("exact", "fused", "tabulated"),
        default="tabulated",
        help="FastCell current kernel for POF characterization "
        "(default: tabulated; fused/exact are the bit-identical "
        "reference paths)",
    )
    group.add_argument(
        "--no-cell-early-exit",
        dest="cell_early_exit",
        action="store_false",
        default=True,
        help="integrate every strike to the full horizon instead of "
        "freezing decided trajectories early",
    )
    group.add_argument(
        "--cell-max-batch",
        type=int,
        default=200_000,
        help="peak (grid point x variation sample) rows per cell "
        "simulation batch (default: 200000)",
    )


def _spec_from_args(args, vdd_list=None):
    """Compile parsed arguments into the canonical query spec.

    The CLI no longer builds flows by hand: it states its question as
    a :class:`~repro.service.QuerySpec` — the same schema the daemon
    serves — so a one-shot command and the equivalent service query
    are bit-identical and share every artifact-cache key.
    """
    from .service import QuerySpec

    particles = tuple(p.strip() for p in args.particles.split(",") if p.strip())
    vdds = tuple(vdd_list) if vdd_list else (0.7, 0.8, 0.9, 1.0, 1.1)
    return QuerySpec(
        particles=particles,
        vdd_list=vdds,
        mc_particles=args.mc_particles,
        samples=args.samples,
        yield_trials=args.yield_trials,
        yield_points=args.yield_points,
        seed=args.seed,
        variation=not args.no_variation,
        cell_kernel=args.cell_kernel,
        cell_early_exit=args.cell_early_exit,
        cell_max_batch=args.cell_max_batch,
        adaptive=getattr(args, "adaptive", False),
        target_se=getattr(args, "target_se", 5e-4),
        target_se_relative=getattr(args, "target_se_relative", False),
        max_trials=getattr(args, "max_trials", None),
        pilot_trials=getattr(args, "pilot_trials", 8192),
        ecc=getattr(args, "ecc", None),
        interleave=getattr(args, "interleave", 4),
        ecc_pair_particles=getattr(args, "ecc_pair_particles", 20000),
    )


def _exec_options(args):
    from .service import ExecutionOptions

    return ExecutionOptions(
        cache_dir=getattr(args, "cache_dir", None),
        n_jobs=getattr(args, "jobs", 1),
        retry=_retry_policy(args),
        resume=getattr(args, "resume", True),
        warm_pool=getattr(args, "warm_pool", None),
        shm=getattr(args, "shm", None),
        backend=getattr(args, "backend", None),
        fuse=getattr(args, "fuse", False),
    )


def _make_flow(args, vdd_list=None):
    from .service import build_flow

    return build_flow(_spec_from_args(args, vdd_list), _exec_options(args))


def cmd_build_luts(args) -> int:
    flow = _make_flow(args)
    luts = flow.yield_luts()
    for name, lut in luts.items():
        _say(
            f"yield LUT [{name}]: {len(lut.energies_mev)} energies, "
            f"{lut.trials_per_energy} trials each, "
            f"peak mean pairs = {np.max(lut.mean_pairs):.1f}"
        )
    table = flow.pof_table()
    _say(
        f"POF table: vdd={table.vdd_list.tolist()}, "
        f"{len(table.charge_axis_c)} charge points, "
        f"PV={'on' if table.process_variation else 'off'}"
    )
    return 0


def cmd_fit(args) -> int:
    flow = _make_flow(args, vdd_list=[args.vdd])
    for particle in flow.config.particles:
        result = flow.fit(particle, args.vdd)
        _say(
            f"{particle:>7s}  vdd={args.vdd:.2f} V  "
            f"FIT={result.fit_total:.4g}  SEU={result.fit_seu:.4g}  "
            f"MBU={result.fit_mbu:.4g}  "
            f"MBU/SEU={100 * result.mbu_to_seu_ratio:.2f}%"
        )
    return 0


def cmd_sweep(args) -> int:
    from .core import fit_report

    vdds = [float(v) for v in args.vdd_list.split(",")]
    flow = _make_flow(args, vdd_list=vdds)
    sweep = flow.sweep()
    _say(fit_report(sweep, normalize=not args.absolute))
    return 0


def cmd_qcrit(args) -> int:
    from .sram import SramCellDesign, critical_charge_vs_vdd

    vdds = [float(v) for v in args.vdd_list.split(",")]
    design = SramCellDesign()
    qcrits = critical_charge_vs_vdd(
        design,
        vdds,
        kernel=args.cell_kernel,
        early_exit=args.cell_early_exit,
    )
    for vdd, qcrit in zip(vdds, qcrits):
        electrons = qcrit / 1.602176634e-19
        _say(f"vdd={vdd:.2f} V  Qcrit={qcrit * 1e15:.4f} fC  ({electrons:.0f} e-)")
    return 0


def cmd_report(args) -> int:
    from .core import write_report

    flow = _make_flow(args)
    path = write_report(
        flow,
        args.out,
        include_pv_comparison=not args.no_variation,
        fig8_particles=args.mc_particles,
    )
    _say(f"report written to {path}")
    return 0


def cmd_figures(args) -> int:
    from .analysis import export_figures

    flow = _make_flow(args)
    written = export_figures(
        flow, args.out_dir, pof_energy_particles=args.mc_particles
    )
    for key, path in sorted(written.items()):
        _say(f"{key}: {path}")
    return 0


def cmd_snm(args) -> int:
    from .sram import SramCellDesign, static_noise_margin_v

    vdds = [float(v) for v in args.vdd_list.split(",")]
    design = SramCellDesign()
    for vdd in vdds:
        hold = static_noise_margin_v(design, vdd, "hold")
        read = static_noise_margin_v(design, vdd, "read")
        _say(
            f"vdd={vdd:.2f} V  hold SNM={hold * 1e3:.1f} mV  "
            f"read SNM={read * 1e3:.1f} mV"
        )
    return 0


def cmd_info(args) -> int:
    from .devices import default_tech

    tech = default_tech()
    _say(f"technology: {tech.name}")
    _say(f"  fin: {tech.fin.length_nm} x {tech.fin.width_nm} x {tech.fin.height_nm} nm")
    for label, model in (("nmos", tech.nmos), ("pmos", tech.pmos)):
        _say(
            f"  {label}: Ion({tech.vdd_nominal_v}V) = "
            f"{model.on_current(tech.vdd_nominal_v) * 1e6:.1f} uA/fin, "
            f"Ioff = {model.off_current(tech.vdd_nominal_v) * 1e9:.2f} nA/fin, "
            f"SS = {model.subthreshold_swing_mv_dec():.0f} mV/dec"
        )
    _say(f"  sigma(Vth) = {tech.sigma_vth_v * 1e3:.0f} mV")
    _say(f"  node cap = {tech.node_cap_f * 1e15:.3f} fF")
    _say(
        f"  transit time tau({tech.vdd_nominal_v} V) = "
        f"{tech.transit_time_s(tech.vdd_nominal_v) * 1e15:.1f} fs"
    )
    return 0


def _add_endpoint(parser):
    group = parser.add_argument_group("service endpoint")
    group.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix socket path (default for serve: ./repro-ser.sock)",
    )
    group.add_argument(
        "--host",
        default=None,
        metavar="ADDR",
        help="TCP bind/connect address (with --port; default 127.0.0.1)",
    )
    group.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="TCP port instead of a unix socket",
    )


def cmd_serve(args) -> int:
    import asyncio

    from .obs import get_event_bus
    from .service import CampaignEngine, ServiceDaemon

    socket_path = args.socket
    if socket_path is None and args.port is None:
        socket_path = "repro-ser.sock"
    engine = CampaignEngine(
        options=_exec_options(args),
        max_concurrent=args.max_concurrent,
        max_pending=args.max_pending,
        memo_size=args.memo_size,
    )
    # watchers stream progress out of the ring; make sure one exists
    # even when --events (which also configures a ring) was not given
    if get_event_bus() is None:
        configure_events(path=None)
    daemon = ServiceDaemon(
        engine, socket_path=socket_path, host=args.host, port=args.port
    )
    where = socket_path if socket_path else f"{args.host or '127.0.0.1'}:{args.port}"
    _say(f"serving SER queries on {where} (ctrl-c or 'shutdown' op to stop)")
    try:
        asyncio.run(daemon.serve_until_shutdown())
    except KeyboardInterrupt:  # pragma: no cover -- interactive
        pass
    finally:
        engine.shutdown(wait=True, timeout_s=30.0)
    stats = engine.stats()
    _say(
        f"served {stats['campaigns']} campaign(s) for "
        f"{stats['requests']} request(s) "
        f"({stats['coalesced']} coalesced, {stats['memo_hits']} memo hits)"
    )
    return 0


def cmd_query(args) -> int:
    import json as _json

    from .service import ServiceClient, ServiceError

    spec = _spec_from_args(
        args,
        vdd_list=[float(v) for v in args.vdd_list.split(",")],
    )
    events_seen = [0]

    def on_event(event):
        events_seen[0] += 1
        kind = event.get("kind", "?")
        label = event.get("label", "")
        _say(f"  [{kind}] {label} {event.get('state', '')}".rstrip())

    socket_path = args.socket
    if socket_path is None and args.port is None:
        socket_path = "repro-ser.sock"
    client = ServiceClient(
        socket_path=socket_path,
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
    )
    try:
        with client:
            reply = client.query(
                spec,
                tenant=args.tenant,
                watch=args.watch,
                on_event=on_event if args.watch else None,
            )
    except (ServiceError, OSError) as exc:
        _say(f"query failed: {exc}")
        return 1
    result = reply["result"]
    _say(
        f"source={reply['source']}  wall={reply['wall_s']:.3f}s  "
        f"key={result['key'][:16]}"
    )
    for case in result["cases"]:
        _say(
            f"{case['particle']:>7s}  vdd={case['vdd']:.2f} V  "
            f"FIT={case['fit_total']:.4g}  SEU={case['fit_seu']:.4g}  "
            f"MBU={case['fit_mbu']:.4g}  "
            f"MBU/SEU={100 * case['mbu_to_seu_ratio']:.2f}%"
        )
    for analysis in result.get("ecc", []):
        _say(
            f"{analysis['particle']:>7s}  vdd={analysis['vdd']:.2f} V  "
            f"{analysis['scheme']} i{analysis['interleave_distance']}: "
            f"uncorrectable={analysis['uncorrectable_rate']:.4g} FIT  "
            f"gain={analysis['correction_gain']:.3g}x"
        )
    if args.json:
        _say(_json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_obs_tail(args) -> int:
    from .obs.inspect import follow_events, tail_events

    if args.follow:
        try:
            for line in follow_events(
                args.path,
                stall_after_s=args.stall_after,
                idle_timeout_s=args.idle_timeout,
            ):
                _say(line)
        except KeyboardInterrupt:  # pragma: no cover -- interactive
            pass
        return 0
    lines, stats = tail_events(args.path, last=args.last)
    for line in lines:
        _say(line)
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in sorted(stats["kinds"].items())
    )
    _say(f"-- {stats['events']} events ({kinds or 'none'})")
    if stats["invalid"]:
        _say(f"-- {stats['invalid']} invalid line(s) skipped")
    return 0


def cmd_obs_summarize(args) -> int:
    import json as _json

    from .obs.inspect import (
        render_span_table,
        render_table,
        summarize_events,
        summarize_manifest,
        summarize_trace,
    )

    kind = args.kind
    if kind == "auto":
        name = str(args.path).lower()
        if name.endswith(".json"):
            kind = "manifest"
        elif "trace" in name:
            kind = "trace"
        else:
            kind = "events"
    if kind == "manifest":
        summary = summarize_manifest(args.path)
        _say(
            f"manifest: command={summary['command']} "
            f"duration={summary['duration_s']:.2f}s"
        )
        if summary["spans"]:
            _say(render_span_table(summary["spans"]))
        bins = summary.get("convergence_bins") or {}
        if bins.get("bins"):
            _say(
                f"convergence: {bins['bins']} bins, "
                f"{bins['total_trials']} trials, "
                f"se p50={bins['p50_se']:.3g} p99={bins['p99_se']:.3g}, "
                f"worst {bins['worst_bin']} ({bins['worst_se']:.3g})"
            )
    elif kind == "trace":
        summary = summarize_trace(args.path)
        _say(render_span_table(summary["spans"]))
        if summary["invalid"]:
            _say(f"-- {summary['invalid']} invalid line(s) skipped")
    else:
        summary = summarize_events(args.path)
        rows = [
            [
                label,
                str(stats["rounds"]),
                str(stats["tasks"]),
                str(stats["finished"]),
                str(stats["retried"]),
                str(stats["lost"]),
                f"{stats['busy_p50_s']:.4f}",
                f"{stats['busy_p99_s']:.4f}",
            ]
            for label, stats in sorted(summary["labels"].items())
        ]
        _say(
            render_table(
                [
                    "label", "rounds", "tasks", "finished",
                    "retried", "lost", "busy_p50", "busy_p99",
                ],
                rows,
            )
        )
        conv = summary["convergence"]
        if conv["bins"]:
            _say(
                f"convergence: {conv['bins']} bins, "
                f"se p50={conv['p50_se']:.3g} p99={conv['p99_se']:.3g}, "
                f"worst {conv['worst_bin']} ({conv['worst_se']:.3g})"
            )
    if args.json:
        _say(_json.dumps(summary, indent=2, sort_keys=True, default=str))
    return 0


def cmd_obs_diff(args) -> int:
    from .obs.inspect import diff_manifests, render_table

    diffs, meta = diff_manifests(args.path_a, args.path_b)
    _say(
        f"comparing {meta['a']['command']} ({meta['a']['started_at']}) "
        f"vs {meta['b']['command']} ({meta['b']['started_at']})"
    )
    if not diffs:
        _say("no differences (wall-time fields within 0.1%)")
        return 0
    _say(
        render_table(
            ["field", "a", "b"],
            [[key, str(va), str(vb)] for key, va, vb in diffs],
        )
    )
    return 1 if args.fail_on_diff else 0


def cmd_obs_bench_check(args) -> int:
    from .obs.inspect import bench_check

    exit_code = 0
    for path in args.paths:
        ok, report = bench_check(path, max_regress=args.max_regress)
        _say(report)
        if not ok:
            exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ser",
        description="Cross-layer SER analysis of SOI FinFET SRAM arrays "
        "(DAC 2014 reproduction)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro-ser {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build-luts", help="build and cache all LUTs")
    _add_common(p_build)
    p_build.set_defaults(func=cmd_build_luts)

    p_fit = sub.add_parser("fit", help="FIT rate at one supply voltage")
    _add_common(p_fit)
    p_fit.add_argument("--vdd", type=float, default=0.8)
    p_fit.set_defaults(func=cmd_fit)

    p_sweep = sub.add_parser("sweep", help="FIT and MBU/SEU vs Vdd")
    _add_common(p_sweep)
    p_sweep.add_argument("--vdd-list", default="0.7,0.8,0.9,1.0,1.1")
    p_sweep.add_argument(
        "--absolute", action="store_true", help="print raw FIT (not normalized)"
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_qcrit = sub.add_parser("qcrit", help="nominal critical charge vs Vdd")
    p_qcrit.add_argument("--vdd-list", default="0.7,0.8,0.9,1.0,1.1")
    _add_cell_kernel(p_qcrit)
    p_qcrit.set_defaults(func=cmd_qcrit)

    p_report = sub.add_parser(
        "report", help="regenerate the paper's evaluation as markdown"
    )
    _add_common(p_report)
    p_report.add_argument("--out", default="reproduction_report.md")
    p_report.set_defaults(func=cmd_report)

    p_figures = sub.add_parser(
        "figures", help="export every reproduced figure series as CSV"
    )
    _add_common(p_figures)
    p_figures.add_argument("--out-dir", default="figures")
    p_figures.set_defaults(func=cmd_figures)

    p_snm = sub.add_parser("snm", help="static noise margins vs Vdd")
    p_snm.add_argument("--vdd-list", default="0.7,0.8,0.9,1.0,1.1")
    p_snm.set_defaults(func=cmd_snm)

    p_info = sub.add_parser("info", help="technology figures of merit")
    p_info.set_defaults(func=cmd_info)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived SER-service daemon (queries over a socket)",
    )
    _add_endpoint(p_serve)
    p_serve.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="artifact cache directory (default: .repro-cache)",
    )
    p_serve.add_argument(
        "--max-concurrent",
        type=int,
        default=1,
        metavar="N",
        help="campaigns running at once (default: 1; each uses --jobs "
        "workers)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=16,
        metavar="N",
        help="admission control: campaigns allowed to wait for a slot "
        "before submissions are rejected (default: 16)",
    )
    p_serve.add_argument(
        "--memo-size",
        type=int,
        default=128,
        metavar="N",
        help="completed results memoized in-process (default: 128)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_query = sub.add_parser(
        "query",
        help="ask a running SER-service daemon for a sweep "
        "(coalesces with identical in-flight queries)",
    )
    _add_common(p_query)
    _add_endpoint(p_query)
    p_query.add_argument("--vdd-list", default="0.7,0.8,0.9,1.0,1.1")
    p_query.add_argument(
        "--tenant",
        default="default",
        help="fair-scheduling tenant this query bills to (default: default)",
    )
    p_query.add_argument(
        "--watch",
        action="store_true",
        help="stream live campaign progress events while waiting",
    )
    p_query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="socket timeout (default: wait forever)",
    )
    p_query.add_argument(
        "--json",
        action="store_true",
        help="also print the full result as JSON",
    )
    ecc_group = p_query.add_argument_group("ecc / interleaving")
    ecc_group.add_argument(
        "--ecc",
        choices=("none", "SEC-DED", "DEC-TED"),
        default=None,
        help="fold an ECC/interleave word-failure analysis over the sweep",
    )
    ecc_group.add_argument(
        "--interleave",
        type=int,
        default=4,
        metavar="D",
        help="bit-interleaving distance for --ecc (default: 4)",
    )
    ecc_group.add_argument(
        "--ecc-pair-particles",
        type=int,
        default=20000,
        metavar="N",
        help="strikes for the failing-pair offset statistics "
        "(default: 20000)",
    )
    p_query.set_defaults(func=cmd_query)

    p_obs = sub.add_parser(
        "obs", help="inspect telemetry files (events, traces, manifests)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_tail = obs_sub.add_parser(
        "tail", help="render an event stream (optionally live)"
    )
    p_tail.add_argument("path", help="events JSONL file (--events output)")
    p_tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep tailing as the file grows (live campaign view with "
        "heartbeat ETAs and stall warnings)",
    )
    p_tail.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the trailing N events (default: all)",
    )
    p_tail.add_argument(
        "--stall-after",
        type=float,
        default=10.0,
        metavar="S",
        help="flag a stall after S seconds without events (default: 10)",
    )
    p_tail.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="S",
        help="stop following after S idle seconds (default: forever)",
    )
    p_tail.set_defaults(func=cmd_obs_tail)

    p_summ = obs_sub.add_parser(
        "summarize",
        help="per-span p50/p99 tables from a trace, events, or manifest file",
    )
    p_summ.add_argument("path", help="telemetry file to summarize")
    p_summ.add_argument(
        "--kind",
        choices=("auto", "trace", "events", "manifest"),
        default="auto",
        help="file type (default: auto -- .json is a manifest, a path "
        "containing 'trace' is a trace, anything else is events)",
    )
    p_summ.add_argument(
        "--json",
        action="store_true",
        help="also print the structured summary as JSON",
    )
    p_summ.set_defaults(func=cmd_obs_summarize)

    p_diff = obs_sub.add_parser(
        "diff", help="field-level differences between two run manifests"
    )
    p_diff.add_argument("path_a")
    p_diff.add_argument("path_b")
    p_diff.add_argument(
        "--fail-on-diff",
        action="store_true",
        help="exit 1 when the manifests differ",
    )
    p_diff.set_defaults(func=cmd_obs_diff)

    p_bench = obs_sub.add_parser(
        "bench-check",
        help="regression-gate BENCH_*.json trajectories (newest vs best)",
    )
    p_bench.add_argument("paths", nargs="+", metavar="BENCH.json")
    p_bench.add_argument(
        "--max-regress",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed relative drop from the historical best "
        "(default: 0.10; committed trajectories span machines, so CI "
        "uses a generous value)",
    )
    p_bench.set_defaults(func=cmd_obs_bench_check)

    for command_parser in (
        p_build, p_fit, p_sweep, p_qcrit, p_report, p_figures, p_snm,
        p_info, p_serve,
    ):
        _add_jobs(command_parser)
        _add_obs(command_parser)
    _add_obs(p_query)  # the client produces no campaigns, only output
    return parser


def _manifest_config(args) -> dict:
    """JSON-safe view of the parsed arguments (drops the callable)."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key != "func" and not callable(value)
    }


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    # the ``obs`` inspection subcommands carry no observability flags
    # of their own (they *read* telemetry instead of producing it), so
    # every flag lookup below tolerates absence.
    configure_logging(
        level=getattr(args, "log_level", "warning"),
        quiet=getattr(args, "quiet", False),
    )
    enable_metrics(fresh=True)
    trace_path = getattr(args, "trace", None)
    events_path = getattr(args, "events", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_path:
        configure_tracing(trace_path)
    if events_path:
        configure_events(path=events_path)

    started_at = datetime.datetime.now(datetime.timezone.utc).isoformat()
    t0 = time.perf_counter()
    exit_code = 1
    try:
        with span(f"cli.{args.command}", argv=" ".join(argv or sys.argv[1:])):
            exit_code = args.func(args)
        return exit_code
    finally:
        duration_s = time.perf_counter() - t0
        if metrics_out:
            manifest = build_manifest(
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                config=_manifest_config(args),
                seed=getattr(args, "seed", None),
                started_at=started_at,
                duration_s=duration_s,
                exit_code=exit_code,
                version=__version__,
            )
            manifest.write(metrics_out)
            _say(f"run manifest written to {metrics_out}")
        if trace_path:
            reset_tracing()
            _say(f"trace written to {trace_path}")
        if events_path:
            disable_events()
            _say(f"events written to {events_path}")


if __name__ == "__main__":
    sys.exit(main())
